package beacon

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func samplePayload() Payload {
	return Payload{
		CampaignID: "Research-010",
		CreativeID: "creative-728x90",
		PageURL:    "http://www.ciencia123.es/articulo?id=7&ref=home",
		UserAgent:  "Mozilla/5.0 (Windows NT 10.0) Chrome/49.0",
		Events: []Event{
			{Kind: EventMouseMove, At: 1200 * time.Millisecond},
			{Kind: EventClick, At: 3400 * time.Millisecond},
		},
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	p := samplePayload()
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.CampaignID != p.CampaignID || got.CreativeID != p.CreativeID ||
		got.PageURL != p.PageURL || got.UserAgent != p.UserAgent {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.Events) != 2 || got.Events[0] != p.Events[0] || got.Events[1] != p.Events[1] {
		t.Fatalf("events mismatch: %+v", got.Events)
	}
}

// Property: encode/decode round-trips arbitrary printable field values.
func TestPayloadRoundTripProperty(t *testing.T) {
	err := quick.Check(func(cid, crid, host, ua string) bool {
		clean := func(s, fallback string) string {
			s = strings.Map(func(r rune) rune {
				if r < 0x20 || r > 0x7E {
					return -1
				}
				return r
			}, s)
			if s == "" {
				return fallback
			}
			return s
		}
		p := Payload{
			CampaignID: clean(cid, "c"),
			CreativeID: clean(crid, "cr"),
			PageURL:    "http://example.es/" + clean(host, "x"),
			UserAgent:  clean(ua, ""),
		}
		got, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return got.CampaignID == p.CampaignID && got.CreativeID == p.CreativeID &&
			got.PageURL == p.PageURL && got.UserAgent == p.UserAgent
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong version":    "v=9&cid=c&crid=r&url=http://x.es/",
		"missing version":  "cid=c&crid=r&url=http://x.es/",
		"missing campaign": "v=1&crid=r&url=http://x.es/",
		"missing creative": "v=1&cid=c&url=http://x.es/",
		"missing url":      "v=1&cid=c&crid=r",
		"bad event":        "v=1&cid=c&crid=r&url=http://x.es/&ev=hover%401000",
		"bad event time":   "v=1&cid=c&crid=r&url=http://x.es/&ev=click%40-5",
		"no event sep":     "v=1&cid=c&crid=r&url=http://x.es/&ev=click1000",
		"bad query":        "v=1&cid=%zz",
	}
	for name, raw := range cases {
		if _, err := Decode(raw); err == nil {
			t.Errorf("%s: Decode accepted %q", name, raw)
		}
	}
}

func TestPublisherExtraction(t *testing.T) {
	cases := []struct {
		url, want string
	}{
		{"http://www.futbolhoy123.es/noticia/42", "futbolhoy123.es"},
		{"https://Ciencia456.ES/path", "ciencia456.es"},
		{"http://foro789.net", "foro789.net"},
		{"http://www.sub.blog321.com/x?y=1", "sub.blog321.com"},
	}
	for _, c := range cases {
		p := Payload{CampaignID: "c", CreativeID: "r", PageURL: c.url}
		got, err := p.Publisher()
		if err != nil {
			t.Fatalf("Publisher(%q): %v", c.url, err)
		}
		if got != c.want {
			t.Errorf("Publisher(%q) = %q, want %q", c.url, got, c.want)
		}
	}
	bad := Payload{CampaignID: "c", CreativeID: "r", PageURL: "not-a-url"}
	if _, err := bad.Publisher(); err == nil {
		t.Error("Publisher accepted URL without host")
	}
}

func TestEventUpdateRoundTrip(t *testing.T) {
	e := Event{Kind: EventClick, At: 2500 * time.Millisecond}
	got, isEvent, err := DecodeEventUpdate(EncodeEventUpdate(e))
	if err != nil || !isEvent {
		t.Fatalf("decode = %v, %v", isEvent, err)
	}
	if got != e {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEventUpdateDetection(t *testing.T) {
	// A full payload is not an event update.
	if _, isEvent, err := DecodeEventUpdate(samplePayload().Encode()); isEvent || err != nil {
		t.Fatalf("payload misdetected as event: %v, %v", isEvent, err)
	}
	// Malformed updates are detected as events but error.
	for _, raw := range []string{"ev:click", "ev:hover@100", "ev:click@abc", "ev:click@-1"} {
		if _, isEvent, err := DecodeEventUpdate(raw); !isEvent || err == nil {
			t.Errorf("DecodeEventUpdate(%q) = (%v, %v), want detected error", raw, isEvent, err)
		}
	}
}

func TestValidate(t *testing.T) {
	p := samplePayload()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Payload){
		func(p *Payload) { p.CampaignID = "" },
		func(p *Payload) { p.CreativeID = "" },
		func(p *Payload) { p.PageURL = "" },
	} {
		q := samplePayload()
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", q)
		}
	}
}
