package beacon

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaudit/internal/wsproto"
)

// collectStub accepts beacon connections and records what arrives.
type collectStub struct {
	srv      *httptest.Server
	payloads chan Payload
	events   chan Event
}

func newCollectStub(t *testing.T) *collectStub {
	t.Helper()
	cs := &collectStub{
		payloads: make(chan Payload, 16),
		events:   make(chan Event, 16),
	}
	up := &wsproto.Upgrader{MaxMessageSize: 1 << 16}
	cs.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := up.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(wsproto.CloseNormal, "")
		for {
			_, msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if e, isEvent, err := DecodeEventUpdate(string(msg)); isEvent {
				if err == nil {
					cs.events <- e
				}
				continue
			}
			if p, err := Decode(string(msg)); err == nil {
				cs.payloads <- p
			}
		}
	}))
	t.Cleanup(cs.srv.Close)
	return cs
}

func (cs *collectStub) wsURL() string {
	return "ws" + strings.TrimPrefix(cs.srv.URL, "http")
}

func TestClientOpenDeliversPayload(t *testing.T) {
	cs := newCollectStub(t)
	c := &Client{CollectorURL: cs.wsURL()}
	p := samplePayload()
	p.Events = nil
	sess, err := c.Open(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	select {
	case got := <-cs.payloads:
		if got.CampaignID != p.CampaignID || got.PageURL != p.PageURL {
			t.Fatalf("collector saw %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("payload never reached collector")
	}
}

func TestClientSendEvent(t *testing.T) {
	cs := newCollectStub(t)
	c := &Client{CollectorURL: cs.wsURL()}
	p := samplePayload()
	p.Events = nil
	sess, err := c.Open(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	<-cs.payloads

	want := Event{Kind: EventClick, At: 1500 * time.Millisecond}
	if err := sess.SendEvent(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-cs.events:
		if got != want {
			t.Fatalf("event = %+v, want %+v", got, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event never reached collector")
	}
}

func TestClientRejectsInvalidPayload(t *testing.T) {
	c := &Client{CollectorURL: "ws://127.0.0.1:1"}
	if _, err := c.Open(context.Background(), Payload{}); err == nil {
		t.Fatal("invalid payload accepted")
	}
}

func TestClientDialFailure(t *testing.T) {
	c := &Client{CollectorURL: "ws://127.0.0.1:1"}
	if _, err := c.Open(context.Background(), samplePayload()); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestClientReportFullFlow(t *testing.T) {
	cs := newCollectStub(t)
	c := &Client{CollectorURL: cs.wsURL()}
	p := samplePayload()
	p.Events = []Event{
		{Kind: EventMouseMove, At: 10 * time.Millisecond},
		{Kind: EventClick, At: 20 * time.Millisecond},
	}
	if err := c.Report(context.Background(), p, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-cs.payloads:
		if len(got.Events) != 0 {
			t.Fatalf("initial payload carried %d events, want 0 (streamed separately)", len(got.Events))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("payload never arrived")
	}
	for i := 0; i < 2; i++ {
		select {
		case <-cs.events:
		case <-time.After(2 * time.Second):
			t.Fatalf("event %d never arrived", i)
		}
	}
}

func TestClientReportRespectsContext(t *testing.T) {
	cs := newCollectStub(t)
	c := &Client{CollectorURL: cs.wsURL()}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Report(ctx, samplePayload(), 10*time.Second)
	if err == nil {
		t.Fatal("Report outlived its context")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation not honoured promptly")
	}
}

func TestScriptGeneration(t *testing.T) {
	js, err := Script(ScriptConfig{
		CollectorURL: "wss://collector.example/beacon",
		CampaignID:   "Research-010",
		CreativeID:   "c1",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"new WebSocket",
		`"wss://collector.example/beacon"`,
		"Research-010",
		"document.referrer",
		"mousemove",
		"click",
		"beforeunload",
		"navigator.userAgent",
	} {
		if !strings.Contains(js, want) {
			t.Errorf("script missing %q", want)
		}
	}
}

func TestScriptEscapesIDs(t *testing.T) {
	js, err := Script(ScriptConfig{
		CollectorURL: "ws://c.example/",
		CampaignID:   `x"; alert(1); var y="`,
		CreativeID:   "c1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js, `x"; alert(1)`) {
		t.Fatal("campaign id not escaped in script")
	}
}

func TestScriptValidation(t *testing.T) {
	if _, err := Script(ScriptConfig{CollectorURL: "http://x", CampaignID: "a", CreativeID: "b"}); err == nil {
		t.Fatal("http collector URL accepted")
	}
	if _, err := Script(ScriptConfig{CollectorURL: "ws://x"}); err == nil {
		t.Fatal("missing ids accepted")
	}
}

func TestAdTag(t *testing.T) {
	tag, err := AdTag(ScriptConfig{
		CollectorURL: "ws://c.example/",
		CampaignID:   "camp",
		CreativeID:   "cr",
	}, `<img src="banner.png" width="728" height="90">`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tag, "banner.png") || !strings.Contains(tag, "<script>") {
		t.Fatalf("ad tag malformed:\n%s", tag)
	}
}
