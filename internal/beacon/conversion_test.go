package beacon

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConversionRoundTrip(t *testing.T) {
	c := Conversion{CampaignID: "spring-sale", Action: "purchase", ValueCents: 4999}
	got, err := DecodeConversion(c.EncodeQuery())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestConversionRoundTripZeroValue(t *testing.T) {
	c := Conversion{CampaignID: "c", Action: "signup"}
	got, err := DecodeConversion(c.EncodeQuery())
	if err != nil {
		t.Fatal(err)
	}
	if got.ValueCents != 0 {
		t.Fatalf("zero value round trip: %+v", got)
	}
}

func TestConversionRoundTripProperty(t *testing.T) {
	err := quick.Check(func(cid, action string, val int64) bool {
		clean := func(s, fallback string) string {
			s = strings.Map(func(r rune) rune {
				if r < 0x20 || r > 0x7E {
					return -1
				}
				return r
			}, s)
			if s == "" {
				return fallback
			}
			return s
		}
		if val < 0 {
			val = -val
		}
		c := Conversion{CampaignID: clean(cid, "c"), Action: clean(action, "a"), ValueCents: val}
		got, err := DecodeConversion(c.EncodeQuery())
		return err == nil && got == c
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeConversionRejects(t *testing.T) {
	cases := map[string]string{
		"impression payload": samplePayload().Encode(),
		"missing t":          "v=1&cid=c&action=a",
		"wrong t":            "v=1&t=imp&cid=c&action=a",
		"missing campaign":   "v=1&t=conv&action=a",
		"missing action":     "v=1&t=conv&cid=c",
		"bad value":          "v=1&t=conv&cid=c&action=a&val=xx",
		"negative value":     "v=1&t=conv&cid=c&action=a&val=-5",
		"wrong version":      "v=2&t=conv&cid=c&action=a",
		"bad query":          "v=1&%zz",
	}
	for name, raw := range cases {
		if _, err := DecodeConversion(raw); err == nil {
			t.Errorf("%s: accepted %q", name, raw)
		}
	}
}

func TestPixelTag(t *testing.T) {
	c := Conversion{CampaignID: "c", Action: "purchase", ValueCents: 100}
	tag, err := c.PixelTag("https://collector.example")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<img", "/conv?", "t=conv", "cid=c", `width="1"`} {
		if !strings.Contains(tag, want) {
			t.Errorf("pixel tag missing %q: %s", want, tag)
		}
	}
	if _, err := c.PixelTag(""); err == nil {
		t.Fatal("empty base accepted")
	}
	if _, err := (Conversion{}).PixelTag("http://x"); err == nil {
		t.Fatal("invalid conversion accepted")
	}
}
