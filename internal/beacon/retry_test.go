package beacon

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaudit/internal/wsproto"
)

// fastRetry returns retry settings that keep tests quick and
// deterministic.
func fastRetry(c *Client, attempts int) *Client {
	c.MaxAttempts = attempts
	c.RetryBackoff = time.Millisecond
	c.RetryBackoffMax = 4 * time.Millisecond
	c.Jitter = func() float64 { return 0.5 }
	return c
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	c := &Client{
		RetryBackoff:    100 * time.Millisecond,
		RetryBackoffMax: 400 * time.Millisecond,
		Jitter:          func() float64 { return 0 }, // low edge: d/2
	}
	for i, want := range []time.Duration{
		50 * time.Millisecond,  // 100ms/2
		100 * time.Millisecond, // 200ms/2
		200 * time.Millisecond, // 400ms/2 (cap)
		200 * time.Millisecond, // stays capped
	} {
		if got := c.backoff(i); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, want)
		}
	}
	// High edge of the jitter window: just under the nominal delay.
	c.Jitter = func() float64 { return 0.999 }
	if got := c.backoff(0); got < 99*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("jittered backoff(0) = %v, want just under 100ms", got)
	}
	// Defaults applied when unset.
	d := &Client{Jitter: func() float64 { return 0 }}
	if got := d.backoff(0); got != 50*time.Millisecond {
		t.Fatalf("default backoff(0) = %v, want 50ms", got)
	}
}

func TestOpenRetriesFailedDials(t *testing.T) {
	var calls atomic.Int32
	up := &wsproto.Upgrader{MaxMessageSize: 1 << 16}
	payloads := make(chan Payload, 4)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			// The first two attempts find an overloaded collector.
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		conn, err := up.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(wsproto.CloseNormal, "")
		for {
			_, msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if p, err := Decode(string(msg)); err == nil {
				payloads <- p
			}
		}
	}))
	defer srv.Close()

	c := fastRetry(&Client{CollectorURL: "ws" + strings.TrimPrefix(srv.URL, "http")}, 3)
	sess, err := c.Open(context.Background(), samplePayload())
	if err != nil {
		t.Fatalf("Open with 3 attempts failed: %v", err)
	}
	defer sess.Close()
	if got := calls.Load(); got != 3 {
		t.Fatalf("collector saw %d attempts, want 3", got)
	}
	select {
	case <-payloads:
	case <-time.After(2 * time.Second):
		t.Fatal("payload never arrived after retries")
	}
}

func TestOpenExhaustsAttemptBudget(t *testing.T) {
	c := fastRetry(&Client{CollectorURL: "ws://127.0.0.1:1"}, 3)
	start := time.Now()
	if _, err := c.Open(context.Background(), samplePayload()); err == nil {
		t.Fatal("dial to closed port eventually succeeded?")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("retries took far longer than the configured backoff")
	}
}

// killingStub is a collector that hard-kills the first kills
// connections after receiving the payload, then serves normally —
// the mid-exposure disconnect a crashed NAT binding produces.
type killingStub struct {
	srv   *httptest.Server
	kills int

	mu       sync.Mutex
	conns    int
	payloads []Payload
	events   []Event
}

func newKillingStub(t *testing.T, kills int) *killingStub {
	t.Helper()
	ks := &killingStub{kills: kills}
	up := &wsproto.Upgrader{MaxMessageSize: 1 << 16}
	ks.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := up.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(wsproto.CloseNormal, "")
		ks.mu.Lock()
		ks.conns++
		kill := ks.conns <= ks.kills
		ks.mu.Unlock()
		for {
			_, msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if e, isEvent, err := DecodeEventUpdate(string(msg)); isEvent {
				if err == nil {
					ks.mu.Lock()
					ks.events = append(ks.events, e)
					ks.mu.Unlock()
				}
				continue
			}
			if p, err := Decode(string(msg)); err == nil {
				ks.mu.Lock()
				ks.payloads = append(ks.payloads, p)
				ks.mu.Unlock()
				if kill {
					// Mid-exposure death: no close frame, straight RST.
					_ = conn.NetConn().Close()
					return
				}
			}
		}
	}))
	t.Cleanup(ks.srv.Close)
	return ks
}

func (ks *killingStub) wsURL() string {
	return "ws" + strings.TrimPrefix(ks.srv.URL, "http")
}

func TestReportReconnectsAndResumesExposureClock(t *testing.T) {
	ks := newKillingStub(t, 1)
	c := fastRetry(&Client{CollectorURL: ks.wsURL()}, 4)
	p := samplePayload()
	p.Events = []Event{
		{Kind: EventMouseMove, At: 10 * time.Millisecond},
		{Kind: EventClick, At: 250 * time.Millisecond},
	}
	const exposure = 400 * time.Millisecond
	start := time.Now()
	if err := c.Report(context.Background(), p, exposure); err != nil {
		t.Fatalf("Report with reconnects failed: %v", err)
	}
	elapsed := time.Since(start)

	ks.mu.Lock()
	defer ks.mu.Unlock()
	if ks.conns < 2 {
		t.Fatalf("collector saw %d connections, want >= 2 (a reconnect)", ks.conns)
	}
	if len(ks.payloads) < 2 {
		t.Fatalf("collector saw %d payloads, want one per connection", len(ks.payloads))
	}
	// Every connection re-sent the SAME nonce, so the collector can
	// dedup.
	nonce := ks.payloads[0].Nonce
	if nonce == "" {
		t.Fatal("retry-enabled Report sent no nonce")
	}
	for i, p := range ks.payloads {
		if p.Nonce != nonce {
			t.Fatalf("payload %d carried nonce %q, want %q", i, p.Nonce, nonce)
		}
	}
	// The exposure clock resumed rather than restarted: total wall time
	// stays near one exposure, not one per connection.
	if elapsed > exposure+300*time.Millisecond {
		t.Fatalf("Report took %v; a resumed clock should stay near %v", elapsed, exposure)
	}
	// Events were not replayed on the second connection.
	if len(ks.events) != len(p.Events) {
		t.Fatalf("collector saw %d events, want exactly %d (no replays)", len(ks.events), len(p.Events))
	}
}

func TestReportSingleAttemptKeepsLegacyWireFormat(t *testing.T) {
	cs := newCollectStub(t)
	c := &Client{CollectorURL: cs.wsURL()}
	if err := c.Report(context.Background(), samplePayload(), 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-cs.payloads:
		if got.Nonce != "" {
			t.Fatalf("single-attempt client sent nonce %q, want none", got.Nonce)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("payload never arrived")
	}
}

// failAfterWrites wraps a net.Conn whose writes start failing after the
// first n succeed — deterministic stand-in for a link that dies between
// the payload and the close frame.
type failAfterWrites struct {
	net.Conn
	n int32
}

func (f *failAfterWrites) Write(b []byte) (int, error) {
	if atomic.AddInt32(&f.n, -1) < 0 {
		return 0, errors.New("link dead")
	}
	return f.Conn.Write(b)
}

func TestReportPropagatesCloseErrorOnSuccessPath(t *testing.T) {
	cs := newCollectStub(t)
	c := &Client{
		CollectorURL: cs.wsURL(),
		Dialer: wsproto.Dialer{
			// Handshake request + payload frame succeed; the close
			// frame hits a dead link.
			WrapConn: func(nc net.Conn) net.Conn { return &failAfterWrites{Conn: nc, n: 2} },
		},
	}
	err := c.Report(context.Background(), samplePayload(), 0)
	if err == nil {
		t.Fatal("Report reported success although the close frame never went out " +
			"(the collector recorded an abnormal close)")
	}
}

func TestNewNonceUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		n := NewNonce()
		if n == "" || seen[n] {
			t.Fatalf("nonce %q empty or repeated", n)
		}
		seen[n] = true
	}
}
