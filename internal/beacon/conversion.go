package beacon

import (
	"fmt"
	"net/url"
	"strconv"
)

// Conversion is the payload the advertiser's conversion pixel reports
// when a desired action (purchase, booking, signup) completes on the
// advertiser's own site. Unlike the in-ad beacon it runs first-party,
// so it travels over a plain HTTP pixel request rather than a
// WebSocket; the collector joins it to exposures through the same
// (IP, User-Agent) user identity.
//
// The paper defines the conversion ratio in §2 and leaves its analysis
// as future work; this message type completes that loop.
type Conversion struct {
	// CampaignID attributes the action to a campaign (carried through
	// the landing-page URL's click tag, as ad platforms do).
	CampaignID string
	// Action names the conversion event, e.g. "purchase".
	Action string
	// ValueCents is the action's value in euro cents, 0 if valueless.
	ValueCents int64
}

// Validate checks the conversion is complete enough to report.
func (c Conversion) Validate() error {
	switch {
	case c.CampaignID == "":
		return fmt.Errorf("beacon: conversion missing campaign id")
	case c.Action == "":
		return fmt.Errorf("beacon: conversion missing action")
	case c.ValueCents < 0:
		return fmt.Errorf("beacon: negative conversion value %d", c.ValueCents)
	}
	return nil
}

// EncodeQuery serialises the conversion as the query string of a pixel
// request: GET /conv?v=1&t=conv&cid=...&action=...&val=...
func (c Conversion) EncodeQuery() string {
	v := url.Values{}
	v.Set("v", strconv.Itoa(PayloadVersion))
	v.Set("t", "conv")
	v.Set("cid", c.CampaignID)
	v.Set("action", c.Action)
	if c.ValueCents != 0 {
		v.Set("val", strconv.FormatInt(c.ValueCents, 10))
	}
	return v.Encode()
}

// DecodeConversion parses a conversion pixel query string.
func DecodeConversion(s string) (Conversion, error) {
	v, err := url.ParseQuery(s)
	if err != nil {
		return Conversion{}, fmt.Errorf("beacon: parsing conversion: %w", err)
	}
	if v.Get("v") != strconv.Itoa(PayloadVersion) {
		return Conversion{}, fmt.Errorf("beacon: unsupported conversion version %q", v.Get("v"))
	}
	if v.Get("t") != "conv" {
		return Conversion{}, fmt.Errorf("beacon: not a conversion payload (t=%q)", v.Get("t"))
	}
	c := Conversion{
		CampaignID: v.Get("cid"),
		Action:     v.Get("action"),
	}
	if raw := v.Get("val"); raw != "" {
		val, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return Conversion{}, fmt.Errorf("beacon: malformed conversion value %q", raw)
		}
		c.ValueCents = val
	}
	if err := c.Validate(); err != nil {
		return Conversion{}, err
	}
	return c, nil
}

// PixelTag renders the HTML the advertiser embeds on its conversion
// page — a 1x1 image pointing at the collector's /conv endpoint.
// collectorBase is the http(s) origin of the collector.
func (c Conversion) PixelTag(collectorBase string) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if collectorBase == "" {
		return "", fmt.Errorf("beacon: pixel tag requires a collector base URL")
	}
	return fmt.Sprintf(`<img src="%s/conv?%s" width="1" height="1" alt="" style="display:none">`,
		collectorBase, c.EncodeQuery()), nil
}
