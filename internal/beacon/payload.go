// Package beacon implements the measurement code the paper injects into
// HTML5 display ads (§3): the payload format the in-ad JavaScript sends
// over a WebSocket to the central collector, a Go client speaking the
// same wire protocol (indistinguishable from a browser at the collector),
// and a generator for the embeddable JavaScript snippet itself.
package beacon

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// PayloadVersion is the wire-format version this package speaks.
const PayloadVersion = 1

// EventKind is a user-interaction type observed on the ad.
type EventKind string

// Interaction kinds the paper's JavaScript collects, plus the
// visibility extension.
const (
	EventMouseMove EventKind = "move"
	EventClick     EventKind = "click"
	// EventVisibility reports the fraction of the ad's pixels inside
	// the viewport. The paper's §3.1 notes the Same-Origin policy hides
	// this in cross-origin iframes, limiting it to a viewability upper
	// bound; placements in friendly (same-origin) iframes CAN measure
	// it, and this event carries that measurement when available.
	EventVisibility EventKind = "vis"
)

// Event is one user interaction with the ad.
type Event struct {
	Kind EventKind
	// At is the time since the impression rendered.
	At time.Duration
	// Fraction is the visible-pixel fraction in [0,1]; only meaningful
	// for EventVisibility.
	Fraction float64
}

// Payload is the information the beacon transmits for one ad impression.
// The collector augments it with connection-derived facts (client IP,
// timestamps, exposure time) which deliberately do NOT travel in the
// payload: the paper derives them server-side so a lying client cannot
// forge them.
type Payload struct {
	// CampaignID identifies the advertiser campaign the creative
	// belongs to.
	CampaignID string
	// CreativeID identifies the specific ad creative.
	CreativeID string
	// PageURL is the full URL of the page displaying the ad; its host
	// is the publisher. Inside a cross-origin iframe the beacon reads
	// document.referrer, the standard workaround the paper's §3.1
	// Same-Origin discussion implies.
	PageURL string
	// UserAgent is the browser's navigator.userAgent.
	UserAgent string
	// Nonce is a client-generated impression identifier. A beacon that
	// reconnects after a network failure resends its payload with the
	// same nonce, and the collector folds the resumed session into the
	// original record instead of double-counting the impression.
	// Optional: an empty nonce opts out of deduplication (the original
	// paper's JavaScript predates it).
	Nonce string
	// Events are user interactions observed so far.
	Events []Event
	// TraceID is an optional 16-hex-digit pipeline trace identifier
	// (internal/trace). A beacon that carries one has been sampled by
	// the sender; the collector adopts the trace so the impression's
	// journey is observable end to end. Empty means untraced.
	TraceID string
	// TraceSent is the sender's wall clock at send time in unix
	// nanoseconds (0 if unknown), letting the collector estimate wire
	// transit. The collector clamps it against clock skew and never
	// uses it for accounting — audit timestamps remain server-derived.
	TraceSent int64
}

// Validate checks the payload is complete enough to ingest.
func (p Payload) Validate() error {
	switch {
	case p.CampaignID == "":
		return fmt.Errorf("beacon: payload missing campaign id")
	case p.CreativeID == "":
		return fmt.Errorf("beacon: payload missing creative id")
	case p.PageURL == "":
		return fmt.Errorf("beacon: payload missing page url")
	}
	if _, err := url.Parse(p.PageURL); err != nil {
		return fmt.Errorf("beacon: invalid page url: %w", err)
	}
	return nil
}

// Publisher returns the publisher domain: the hostname of PageURL,
// lower-cased and stripped of a "www." prefix, matching how the paper
// reduces impression URLs to publishers.
func (p Payload) Publisher() (string, error) {
	u, err := url.Parse(p.PageURL)
	if err != nil {
		return "", fmt.Errorf("beacon: parsing page url: %w", err)
	}
	host := strings.ToLower(u.Hostname())
	host = strings.TrimPrefix(host, "www.")
	if host == "" {
		return "", fmt.Errorf("beacon: page url %q has no host", p.PageURL)
	}
	return host, nil
}

// Encode serialises the payload to the string the beacon sends as a
// WebSocket text message: URL-encoded key/value pairs, the format a
// five-line JavaScript encoder can emit.
func (p Payload) Encode() string {
	v := url.Values{}
	v.Set("v", strconv.Itoa(PayloadVersion))
	v.Set("cid", p.CampaignID)
	v.Set("crid", p.CreativeID)
	v.Set("url", p.PageURL)
	v.Set("ua", p.UserAgent)
	if p.Nonce != "" {
		v.Set("n", p.Nonce)
	}
	if len(p.Events) > 0 {
		evs := make([]string, len(p.Events))
		for i, e := range p.Events {
			evs[i] = encodeEvent(e)
		}
		v.Set("ev", strings.Join(evs, ","))
	}
	if p.TraceID != "" {
		v.Set("tr", p.TraceID)
		if p.TraceSent > 0 {
			v.Set("trts", strconv.FormatInt(p.TraceSent, 10))
		}
	}
	return v.Encode()
}

// encodeEvent renders one event: "kind@ms" or "vis@ms:frac".
func encodeEvent(e Event) string {
	if e.Kind == EventVisibility {
		return fmt.Sprintf("%s@%d:%.3f", e.Kind, e.At.Milliseconds(), e.Fraction)
	}
	return fmt.Sprintf("%s@%d", e.Kind, e.At.Milliseconds())
}

// decodeEvent parses one event token.
func decodeEvent(part string) (Event, error) {
	kind, rest, ok := strings.Cut(part, "@")
	if !ok {
		return Event{}, fmt.Errorf("beacon: malformed event %q", part)
	}
	atRaw, fracRaw, hasFrac := strings.Cut(rest, ":")
	ms, err := strconv.ParseInt(atRaw, 10, 64)
	if err != nil || ms < 0 {
		return Event{}, fmt.Errorf("beacon: malformed event time %q", atRaw)
	}
	e := Event{Kind: EventKind(kind), At: time.Duration(ms) * time.Millisecond}
	switch e.Kind {
	case EventMouseMove, EventClick:
		if hasFrac {
			return Event{}, fmt.Errorf("beacon: unexpected fraction on %q", part)
		}
	case EventVisibility:
		if !hasFrac {
			return Event{}, fmt.Errorf("beacon: visibility event %q missing fraction", part)
		}
		f, err := strconv.ParseFloat(fracRaw, 64)
		if err != nil || f < 0 || f > 1 {
			return Event{}, fmt.Errorf("beacon: malformed visibility fraction %q", fracRaw)
		}
		e.Fraction = f
	default:
		return Event{}, fmt.Errorf("beacon: unknown event kind %q", kind)
	}
	return e, nil
}

// Decode parses a payload string received by the collector. It is
// deliberately tolerant of unknown keys (future beacon versions) but
// strict about the version and the event syntax.
func Decode(s string) (Payload, error) {
	v, err := url.ParseQuery(s)
	if err != nil {
		return Payload{}, fmt.Errorf("beacon: parsing payload: %w", err)
	}
	ver := v.Get("v")
	if ver != strconv.Itoa(PayloadVersion) {
		return Payload{}, fmt.Errorf("beacon: unsupported payload version %q", ver)
	}
	p := Payload{
		CampaignID: v.Get("cid"),
		CreativeID: v.Get("crid"),
		PageURL:    v.Get("url"),
		UserAgent:  v.Get("ua"),
		Nonce:      v.Get("n"),
	}
	// Trace context is best-effort observability: a malformed tr/trts
	// pair is dropped rather than rejecting the impression — tracing
	// must never cost the audit a record.
	if tr := v.Get("tr"); tr != "" && len(tr) <= 16 {
		if _, err := strconv.ParseUint(tr, 16, 64); err == nil {
			p.TraceID = tr
			if ts, err := strconv.ParseInt(v.Get("trts"), 10, 64); err == nil && ts > 0 {
				p.TraceSent = ts
			}
		}
	}
	if raw := v.Get("ev"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			e, err := decodeEvent(part)
			if err != nil {
				return Payload{}, err
			}
			p.Events = append(p.Events, e)
		}
	}
	if err := p.Validate(); err != nil {
		return Payload{}, err
	}
	return p, nil
}

// eventMessagePrefix distinguishes incremental interaction updates sent
// after the initial impression message on the same connection.
const eventMessagePrefix = "ev:"

// EncodeEventUpdate serialises a single interaction event sent after the
// initial impression message.
func EncodeEventUpdate(e Event) string {
	return eventMessagePrefix + encodeEvent(e)
}

// DecodeEventUpdate parses an incremental interaction message. ok is
// false if the message is not an event update (i.e. it should be parsed
// as an initial payload instead).
func DecodeEventUpdate(s string) (Event, bool, error) {
	if !strings.HasPrefix(s, eventMessagePrefix) {
		return Event{}, false, nil
	}
	e, err := decodeEvent(strings.TrimPrefix(s, eventMessagePrefix))
	if err != nil {
		return Event{}, true, err
	}
	return e, true, nil
}
