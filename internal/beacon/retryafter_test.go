package beacon

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaudit/internal/simclock"
	"adaudit/internal/wsproto"
)

func TestParseRetryAfterValue(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"3", 3 * time.Second},
		{" 10 ", 10 * time.Second},
		{"0", 0},
		{"-2", 0},
		{"1500ms", 1500 * time.Millisecond},
		{"2s", 2 * time.Second},
		{"", 0},
		{"soon", 0},
		{"-1s", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfterValue(c.in); got != c.want {
			t.Errorf("parseRetryAfterValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRetryAfterFromReason(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"retry-after=2s", 2 * time.Second},
		{"draining retry-after=500ms resumable", 500 * time.Millisecond},
		{"overloaded retry-after=3", 3 * time.Second},
		{"draining", 0},
		{"", 0},
		{"retry-after=", 0},
	}
	for _, c := range cases {
		if got := retryAfterFromReason(c.in); got != c.want {
			t.Errorf("retryAfterFromReason(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// virtualDialTimes wraps a client with a virtual backoff clock and
// records the virtual instant of every dial, with a background driver
// advancing the clock in small steps so backoff timers eventually fire.
// stop must be called before reading the recorded times.
func virtualDialTimes(c *Client) (v *simclock.Virtual, times *[]time.Time, stop func()) {
	v = simclock.NewVirtual(time.Time{})
	c.Clock = v
	var mu sync.Mutex
	var recorded []time.Time
	base := c.Dialer.NetDial
	if base == nil {
		base = func(ctx context.Context, network, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		}
	}
	c.Dialer.NetDial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		mu.Lock()
		recorded = append(recorded, v.Now())
		mu.Unlock()
		return base(ctx, network, addr)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				v.Advance(250 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	return v, &recorded, func() { close(done); wg.Wait() }
}

// TestOpenHonorsRetryAfterHeader proves the 503 path: a handshake
// rejection carrying "Retry-After: 3" floors the next dial at three
// seconds of virtual time, far beyond the millisecond-scale jitter
// schedule the client would otherwise use.
func TestOpenHonorsRetryAfterHeader(t *testing.T) {
	var calls atomic.Int32
	up := &wsproto.Upgrader{MaxMessageSize: 1 << 16}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		conn, err := up.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(wsproto.CloseNormal, "")
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}))
	defer srv.Close()

	c := fastRetry(&Client{CollectorURL: "ws" + strings.TrimPrefix(srv.URL, "http")}, 3)
	_, dials, stop := virtualDialTimes(c)
	sess, err := c.Open(context.Background(), samplePayload())
	stop()
	if err != nil {
		t.Fatalf("Open after Retry-After failed: %v", err)
	}
	defer sess.Close()
	if len(*dials) < 2 {
		t.Fatalf("recorded %d dials, want >= 2", len(*dials))
	}
	// The hinted 3s floors the ~0.75ms jittered schedule.
	if gap := (*dials)[1].Sub((*dials)[0]); gap < 3*time.Second {
		t.Fatalf("second dial came %v of virtual time after the first, want >= 3s (the Retry-After hint)", gap)
	}
}

// TestReportHonorsCloseFrameRetryAfter proves the close-frame path: a
// server that ends the session with 1013 (try again later) and a
// "retry-after=2s" reason delays the reconnect by at least the hint.
func TestReportHonorsCloseFrameRetryAfter(t *testing.T) {
	var conns atomic.Int32
	up := &wsproto.Upgrader{MaxMessageSize: 1 << 16}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := up.Upgrade(w, r)
		if err != nil {
			return
		}
		if conns.Add(1) == 1 {
			// Read the payload, then shed the session with a hint.
			_, _, _ = conn.ReadMessage()
			conn.Close(wsproto.CloseTryAgainLater, "overloaded retry-after=2s")
			return
		}
		defer conn.Close(wsproto.CloseNormal, "")
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}))
	defer srv.Close()

	c := fastRetry(&Client{CollectorURL: "ws" + strings.TrimPrefix(srv.URL, "http")}, 4)
	_, dials, stop := virtualDialTimes(c)
	err := c.Report(context.Background(), samplePayload(), 100*time.Millisecond)
	stop()
	if err != nil {
		t.Fatalf("Report across a hinted shed failed: %v", err)
	}
	if len(*dials) < 2 {
		t.Fatalf("recorded %d dials, want >= 2 (a reconnect)", len(*dials))
	}
	if gap := (*dials)[1].Sub((*dials)[0]); gap < 2*time.Second {
		t.Fatalf("reconnect came %v of virtual time after the shed, want >= 2s (the close-frame hint)", gap)
	}
}
