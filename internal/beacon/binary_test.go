package beacon

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// sampleBinaryPayload is samplePayload plus the fields the binary wire
// exercises beyond the basics: nonce, trace context, a visibility
// event.
func sampleBinaryPayload() Payload {
	p := samplePayload()
	p.Nonce = "a1b2c3d4e5f60718a1b2c3d4e5f60718"
	p.TraceID = "0123456789abcdef"
	p.TraceSent = 1459209600000000000
	p.Events = append(p.Events, Event{Kind: EventVisibility, At: 5 * time.Second, Fraction: 0.75})
	return p
}

// eventsEquivalent compares event lists treating NaN fractions as
// equal (the text wire's fraction validation lets NaN through, and
// NaN != NaN under ==).
func eventsEquivalent(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].At != b[i].At {
			return false
		}
		fa, fb := a[i].Fraction, b[i].Fraction
		if fa != fb && !(math.IsNaN(fa) && math.IsNaN(fb)) {
			return false
		}
	}
	return true
}

func payloadsEquivalent(a, b Payload) bool {
	if a.CampaignID != b.CampaignID || a.CreativeID != b.CreativeID ||
		a.PageURL != b.PageURL || a.UserAgent != b.UserAgent ||
		a.Nonce != b.Nonce || a.TraceID != b.TraceID || a.TraceSent != b.TraceSent {
		return false
	}
	return eventsEquivalent(a.Events, b.Events) && (a.Events == nil) == (b.Events == nil)
}

func TestBinaryRoundTrip(t *testing.T) {
	p := sampleBinaryPayload()
	got, err := DecodeBinary(p.EncodeBinary())
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("binary round trip drift:\n got %+v\nwant %+v", got, p)
	}
}

func TestBinaryMatchesTextDecode(t *testing.T) {
	cases := []Payload{
		samplePayload(),
		sampleBinaryPayload(),
		{CampaignID: "c", CreativeID: "r", PageURL: "http://x.es/"},
		{CampaignID: "c", CreativeID: "r", PageURL: "http://x.es/",
			Events: []Event{{Kind: EventVisibility, At: time.Second, Fraction: 0.123456}}},
		{CampaignID: "c", CreativeID: "r", PageURL: "http://x.es/",
			UserAgent: "ua with spaces & symbols=%",
			Events:    []Event{{Kind: EventVisibility, Fraction: 1}}},
	}
	for i, p := range cases {
		viaText, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("case %d: text decode: %v", i, err)
		}
		viaBinary, err := DecodeBinary(p.EncodeBinary())
		if err != nil {
			t.Fatalf("case %d: binary decode: %v", i, err)
		}
		if !payloadsEquivalent(viaText, viaBinary) {
			t.Fatalf("case %d: wire drift:\n text   %+v\n binary %+v", i, viaText, viaBinary)
		}
	}
}

func TestBinaryEventUpdateRoundTrip(t *testing.T) {
	for _, e := range []Event{
		{Kind: EventMouseMove, At: 123 * time.Millisecond},
		{Kind: EventClick, At: 0},
		{Kind: EventVisibility, At: time.Minute, Fraction: 0.875},
	} {
		got, ok, err := DecodeBinaryEventUpdate(EncodeBinaryEventUpdate(e))
		if err != nil || !ok {
			t.Fatalf("decode(%+v): ok=%v err=%v", e, ok, err)
		}
		if got != e {
			t.Fatalf("event round trip drift: got %+v want %+v", got, e)
		}
	}
	// An impression payload must classify as not-an-event-update.
	if _, ok, _ := DecodeBinaryEventUpdate(sampleBinaryPayload().EncodeBinary()); ok {
		t.Fatal("impression payload classified as event update")
	}
}

func TestBinaryDecodeRejects(t *testing.T) {
	valid := sampleBinaryPayload().EncodeBinary()
	cases := map[string][]byte{
		"empty":             nil,
		"bad magic":         {0x7f, PayloadVersion},
		"bad version":       {BinaryMagicImpression, 9},
		"truncated":         valid[:len(valid)-3],
		"trailing":          append(append([]byte(nil), valid...), 0),
		"huge field length": {BinaryMagicImpression, PayloadVersion, 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, b := range cases {
		if _, err := DecodeBinary(b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	// Missing required fields parse but fail validation, like text.
	if _, err := DecodeBinary(Payload{}.EncodeBinary()); err == nil {
		t.Error("empty payload accepted")
	}
}

// FuzzDecodeBinary checks the binary impression parser never panics,
// and that anything it accepts is valid and survives a re-encode.
func FuzzDecodeBinary(f *testing.F) {
	f.Add(sampleBinaryPayload().EncodeBinary())
	f.Add(samplePayload().EncodeBinary())
	f.Add(Payload{CampaignID: "c", CreativeID: "r", PageURL: "http://x.es/"}.EncodeBinary())
	f.Add(EncodeBinaryEventUpdate(Event{Kind: EventClick, At: time.Second}))
	f.Add([]byte{})
	f.Add([]byte{BinaryMagicImpression, PayloadVersion})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := DecodeBinary(raw)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("DecodeBinary accepted invalid payload: %v", err)
		}
		q, err := DecodeBinary(p.EncodeBinary())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !payloadsEquivalent(p, q) {
			t.Fatalf("binary round trip drift: %+v vs %+v", p, q)
		}
		// Event updates share the event syntax; the same bytes must
		// never be readable as both message kinds.
		if _, ok, _ := DecodeBinaryEventUpdate(raw); ok {
			t.Fatal("bytes decoded as both impression and event update")
		}
	})
}

// FuzzWireEquivalence feeds arbitrary text payloads through both
// wires: whatever the text decoder accepts must, after a binary
// encode/decode round trip, match the text re-decode exactly — the
// property that lets a mixed text/binary fleet produce one coherent
// dataset.
func FuzzWireEquivalence(f *testing.F) {
	f.Add(sampleBinaryPayload().Encode())
	f.Add(samplePayload().Encode())
	f.Add("v=1&cid=c&crid=r&url=http%3A%2F%2Fx.es%2F&ev=vis%40100%3A0.5")
	f.Add("v=1&cid=c&crid=r&url=http%3A%2F%2Fx.es%2F&ev=vis%40100%3ANaN")
	f.Add("v=1&cid=c&crid=r&url=http%3A%2F%2Fx.es%2F&tr=abc&trts=5")
	f.Fuzz(func(t *testing.T, raw string) {
		p, err := Decode(raw)
		if err != nil {
			return
		}
		viaText, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("text re-decode failed: %v", err)
		}
		viaBinary, err := DecodeBinary(p.EncodeBinary())
		if err != nil {
			t.Fatalf("binary decode failed: %v", err)
		}
		if !payloadsEquivalent(viaText, viaBinary) {
			t.Fatalf("wire drift for %q:\n text   %+v\n binary %+v", raw, viaText, viaBinary)
		}
	})
}
