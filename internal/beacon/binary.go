package beacon

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Binary wire format (DESIGN.md §13). The text payload is what a
// five-line JavaScript encoder can emit; the binary format is for Go
// beacons (the simulator's device fleet, load generators) and for any
// client that wants the collector's zero-allocation decode path. It is
// negotiated per connection by the WebSocket opcode of the first
// message: OpText selects the historical text protocol, OpBinary this
// one. Both encodings carry the same fields with the same quantization
// (event times in whole milliseconds, visibility fractions rounded to
// three decimals at encode time), so a dataset ingested over a mix of
// wires is byte-identical to an all-text run.
//
// Layout, all integers unsigned LEB128 varints (binary.AppendUvarint):
//
//	impression message:
//	  0x01 version(=1)
//	  cid crid url ua nonce traceID   — each: uvarint length + raw bytes
//	  traceSent                        — uvarint unix nanoseconds (0 none)
//	  eventCount                       — uvarint
//	  events: kind(byte 0=move 1=click 2=vis) atMillis(uvarint)
//	          [vis only] fraction (8-byte little-endian IEEE 754 bits)
//
//	event update message (the text protocol's "ev:" frames):
//	  0x02 version(=1) kind atMillis [fraction]
//
// Decode mirrors the text decoder's validation exactly — including its
// quirks (a visibility fraction is rejected only when f < 0 or f > 1,
// so NaN passes both wires; malformed trace context is dropped, never
// fatal) — which is what makes the text↔binary round-trip equivalence
// fuzzable.
const (
	// BinaryMagicImpression tags a binary impression payload message.
	BinaryMagicImpression = 0x01
	// BinaryMagicEvent tags a binary interaction-update message.
	BinaryMagicEvent = 0x02
)

// binary event kind codes.
const (
	binKindMove  = 0
	binKindClick = 1
	binKindVis   = 2
)

// quantizeFraction reduces a visibility fraction to the value the text
// wire delivers: three decimals, formatted and re-parsed so the result
// is the exact float64 the collector would store for a text beacon.
func quantizeFraction(f float64) float64 {
	q, _ := strconv.ParseFloat(strconv.FormatFloat(f, 'f', 3, 64), 64)
	return q
}

// appendString appends a uvarint length prefix followed by the raw
// bytes of s.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBinaryEvent(dst []byte, e Event) []byte {
	switch e.Kind {
	case EventMouseMove:
		dst = append(dst, binKindMove)
	case EventClick:
		dst = append(dst, binKindClick)
	case EventVisibility:
		dst = append(dst, binKindVis)
	}
	dst = binary.AppendUvarint(dst, uint64(e.At.Milliseconds()))
	if e.Kind == EventVisibility {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(quantizeFraction(e.Fraction)))
	}
	return dst
}

// AppendBinary appends the binary encoding of p to dst and returns the
// extended slice. Events with kinds outside the wire vocabulary are
// skipped (the text encoder would produce tokens the decoder rejects;
// the binary encoder simply cannot express them).
func (p Payload) AppendBinary(dst []byte) []byte {
	dst = append(dst, BinaryMagicImpression, PayloadVersion)
	dst = appendString(dst, p.CampaignID)
	dst = appendString(dst, p.CreativeID)
	dst = appendString(dst, p.PageURL)
	dst = appendString(dst, p.UserAgent)
	dst = appendString(dst, p.Nonce)
	dst = appendString(dst, p.TraceID)
	ts := p.TraceSent
	if ts < 0 || p.TraceID == "" {
		ts = 0
	}
	dst = binary.AppendUvarint(dst, uint64(ts))
	n := 0
	for _, e := range p.Events {
		if wireEventKind(e.Kind) {
			n++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	for _, e := range p.Events {
		if wireEventKind(e.Kind) {
			dst = appendBinaryEvent(dst, e)
		}
	}
	return dst
}

func wireEventKind(k EventKind) bool {
	return k == EventMouseMove || k == EventClick || k == EventVisibility
}

// EncodeBinary returns the binary encoding of p as a fresh buffer —
// the message a binary-wire beacon sends where a text-wire beacon
// sends Encode().
func (p Payload) EncodeBinary() []byte {
	return p.AppendBinary(nil)
}

// EncodeBinaryEventUpdate returns the binary interaction-update
// message for e — the binary wire's "ev:" frame.
func EncodeBinaryEventUpdate(e Event) []byte {
	return appendBinaryEvent([]byte{BinaryMagicEvent, PayloadVersion}, e)
}

// binReader walks a binary message. All methods record the first error
// and become no-ops after it, so decode loops stay branch-light.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("beacon: "+format, args...)
	}
}

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("binary payload truncated")
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("binary payload: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// bytes returns the next length-prefixed field aliasing the input
// buffer — callers must copy (or intern) before the buffer is reused.
func (r *binReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("binary payload: field length %d exceeds message", n)
		return nil
	}
	f := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return f
}

func (r *binReader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("binary payload truncated in float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// decodeBinaryEventBody parses kind/at/fraction after the magic and
// version bytes, mirroring decodeEvent's validation: non-negative
// millisecond times, fractions rejected only when f < 0 or f > 1.
func (r *binReader) event() Event {
	kind := r.byte()
	ms := r.uvarint()
	if ms > math.MaxInt64/uint64(time.Millisecond) {
		r.fail("binary payload: event time out of range")
		return Event{}
	}
	e := Event{At: time.Duration(ms) * time.Millisecond}
	switch kind {
	case binKindMove:
		e.Kind = EventMouseMove
	case binKindClick:
		e.Kind = EventClick
	case binKindVis:
		e.Kind = EventVisibility
		f := r.float64()
		if f < 0 || f > 1 {
			r.fail("binary payload: visibility fraction %v out of range", f)
			return Event{}
		}
		e.Fraction = f
	default:
		r.fail("binary payload: unknown event kind %d", kind)
	}
	return e
}

// maxBinaryEvents bounds the decoded event count so a hostile header
// cannot make the decoder pre-size an enormous slice. Real sessions
// accumulate events one update frame at a time; a payload claiming
// more events than its remaining bytes could hold is rejected anyway,
// and this cap just keeps the pre-allocation honest.
const maxBinaryEvents = 1 << 16

// DecodeBinary parses a binary impression message into a standalone
// Payload: every string is copied out of b, so the caller may reuse
// the buffer immediately. The collector's hot path uses a pooled
// decoder instead (internal/collector); this allocating form serves
// tests, fuzzing, and gateways.
func DecodeBinary(b []byte) (Payload, error) {
	var p Payload
	err := DecodeBinaryInto(&p, b, func(f []byte) string { return string(f) })
	if err != nil {
		return Payload{}, err
	}
	if len(p.Events) == 0 {
		// Text decode leaves Events nil when none arrived; match it so
		// the two wires' decoded payloads are deep-equal.
		p.Events = nil
	}
	return p, nil
}

// DecodeBinaryInto parses b into p, converting the low-cardinality
// identity fields (campaign, creative, page URL, user agent) through
// intern — the seam that lets the collector substitute an
// allocation-free interning lookup. The nonce and trace ID are unique
// per impression, so interning them would only churn the caller's
// tables; they are plain-copied instead. p.Events is reused if it has
// capacity. Validation matches the text decoder: version check, event
// syntax, trace context dropped (not fatal) when malformed, then
// Payload.Validate.
func DecodeBinaryInto(p *Payload, b []byte, intern func([]byte) string) error {
	r := binReader{b: b}
	if magic := r.byte(); r.err == nil && magic != BinaryMagicImpression {
		return fmt.Errorf("beacon: binary message is not an impression payload (magic 0x%02x)", magic)
	}
	if ver := r.byte(); r.err == nil && ver != PayloadVersion {
		return fmt.Errorf("beacon: unsupported payload version %d", ver)
	}
	p.CampaignID = intern(r.bytes())
	p.CreativeID = intern(r.bytes())
	p.PageURL = intern(r.bytes())
	p.UserAgent = intern(r.bytes())
	p.Nonce = string(r.bytes())
	traceID := r.bytes()
	traceSent := r.uvarint()
	n := r.uvarint()
	if r.err != nil {
		return r.err
	}
	if n > maxBinaryEvents || n > uint64(len(b)) {
		return fmt.Errorf("beacon: binary payload claims %d events in %d bytes", n, len(b))
	}
	p.Events = p.Events[:0]
	if n > 0 && cap(p.Events) < int(n) {
		p.Events = make([]Event, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		e := r.event()
		if r.err != nil {
			return r.err
		}
		p.Events = append(p.Events, e)
	}
	if r.off != len(b) {
		return fmt.Errorf("beacon: %d trailing bytes after binary payload", len(b)-r.off)
	}
	// Trace context is best-effort observability, exactly as on the
	// text wire: malformed context is dropped, never fatal.
	p.TraceID, p.TraceSent = "", 0
	if len(traceID) > 0 && len(traceID) <= 16 {
		if _, err := strconv.ParseUint(string(traceID), 16, 64); err == nil {
			p.TraceID = string(traceID)
			if traceSent <= math.MaxInt64 && traceSent > 0 {
				p.TraceSent = int64(traceSent)
			}
		}
	}
	return p.Validate()
}

// DecodeBinaryEventUpdate parses a binary interaction update. ok is
// false when the message is not an event update (it should be parsed
// as an impression payload instead), matching DecodeEventUpdate.
func DecodeBinaryEventUpdate(b []byte) (Event, bool, error) {
	if len(b) == 0 || b[0] != BinaryMagicEvent {
		return Event{}, false, nil
	}
	r := binReader{b: b, off: 1}
	if ver := r.byte(); r.err == nil && ver != PayloadVersion {
		return Event{}, true, fmt.Errorf("beacon: unsupported payload version %d", ver)
	}
	e := r.event()
	if r.err != nil {
		return Event{}, true, r.err
	}
	if r.off != len(b) {
		return Event{}, true, fmt.Errorf("beacon: %d trailing bytes after event update", len(b)-r.off)
	}
	return e, true, nil
}
