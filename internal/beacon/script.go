package beacon

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ScriptConfig parameterises the embeddable JavaScript snippet.
type ScriptConfig struct {
	// CollectorURL is the ws:// or wss:// endpoint the beacon reports to.
	CollectorURL string
	// CampaignID and CreativeID identify the ad the snippet ships in.
	CampaignID string
	CreativeID string
	// MouseMoveThrottleMS rate-limits mousemove events (default 500ms),
	// keeping the beacon "light" as §3 requires.
	MouseMoveThrottleMS int
}

// Script renders the JavaScript the advertiser pastes into the HTML5
// creative — the actual artifact the paper's methodology injects. It is
// plain ES5 (2016-era browsers inside ad iframes), uses the native
// WebSocket API, reads document.referrer for the page URL (the
// Same-Origin policy hides the top frame's location from a cross-origin
// iframe, as §3.1 discusses), and reports mouse movements and clicks.
// The connection is left open until page unload so the server-side
// connection duration measures ad exposure time.
func Script(cfg ScriptConfig) (string, error) {
	if cfg.CollectorURL == "" {
		return "", fmt.Errorf("beacon: script requires a collector URL")
	}
	if !strings.HasPrefix(cfg.CollectorURL, "ws://") && !strings.HasPrefix(cfg.CollectorURL, "wss://") {
		return "", fmt.Errorf("beacon: collector URL must be ws:// or wss://, got %q", cfg.CollectorURL)
	}
	if cfg.CampaignID == "" || cfg.CreativeID == "" {
		return "", fmt.Errorf("beacon: script requires campaign and creative ids")
	}
	throttle := cfg.MouseMoveThrottleMS
	if throttle <= 0 {
		throttle = 500
	}
	// JSON-encode the strings so arbitrary IDs cannot break out of the
	// script context.
	u, err := json.Marshal(cfg.CollectorURL)
	if err != nil {
		// json.Marshal of a plain string cannot fail (invalid UTF-8 is
		// replaced, not rejected); a non-nil error here means the
		// encoder's contract changed under us — make that loud.
		panic(fmt.Sprintf("beacon: marshaling collector URL: %v", err))
	}
	cid, err := json.Marshal(cfg.CampaignID)
	if err != nil {
		panic(fmt.Sprintf("beacon: marshaling campaign id: %v", err))
	}
	crid, err := json.Marshal(cfg.CreativeID)
	if err != nil {
		panic(fmt.Sprintf("beacon: marshaling creative id: %v", err))
	}

	return fmt.Sprintf(`(function () {
  "use strict";
  var COLLECTOR = %s, CID = %s, CRID = %s, THROTTLE = %d;
  var t0 = new Date().getTime();
  var page = "";
  try { page = window.top.location.href; } catch (e) { /* cross-origin iframe */ }
  if (!page) { page = document.referrer || ""; }
  if (!page) { return; } // nothing attributable to report
  var ws;
  try { ws = new WebSocket(COLLECTOR); } catch (e) { return; }
  function enc(s) { return encodeURIComponent(s); }
  ws.onopen = function () {
    ws.send("v=%d&cid=" + enc(CID) + "&crid=" + enc(CRID) +
            "&url=" + enc(page) + "&ua=" + enc(navigator.userAgent));
  };
  function at() { return new Date().getTime() - t0; }
  function send(kind) {
    if (ws.readyState === 1) { ws.send("ev:" + kind + "@" + at()); }
  }
  var lastMove = 0;
  document.addEventListener("mousemove", function () {
    var now = new Date().getTime();
    if (now - lastMove >= THROTTLE) { lastMove = now; send("move"); }
  });
  document.addEventListener("click", function () { send("click"); });
  // Visibility extension: in friendly iframes (or browsers with
  // IntersectionObserver) report the visible-pixel fraction, lifting
  // the cross-origin upper-bound limitation where possible.
  if (typeof IntersectionObserver !== "undefined") {
    try {
      var io = new IntersectionObserver(function (entries) {
        for (var i = 0; i < entries.length; i++) {
          var r = entries[i].intersectionRatio;
          if (ws.readyState === 1) {
            ws.send("ev:vis@" + at() + ":" + r.toFixed(3));
          }
        }
      }, { threshold: [0, 0.25, 0.5, 0.75, 1] });
      io.observe(document.body);
    } catch (e) { /* cross-origin or unsupported: upper bound only */ }
  }
  window.addEventListener("beforeunload", function () {
    try { ws.close(1001); } catch (e) {}
  });
}());
`, u, cid, crid, throttle, PayloadVersion), nil
}

// AdTag renders a complete HTML5 ad fragment embedding the beacon script
// alongside the creative markup, ready to upload to an ad network that
// accepts third-party HTML5 creatives.
func AdTag(cfg ScriptConfig, creativeHTML string) (string, error) {
	js, err := Script(cfg)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("<!-- adaudit beacon v%d -->\n%s\n<script>\n%s</script>\n",
		PayloadVersion, creativeHTML, js), nil
}
