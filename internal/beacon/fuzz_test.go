package beacon

import (
	"testing"
)

// FuzzDecode checks the impression-payload parser never panics and that
// anything it accepts re-encodes to an equivalent payload.
func FuzzDecode(f *testing.F) {
	f.Add(samplePayload().Encode())
	f.Add("v=1&cid=c&crid=r&url=http%3A%2F%2Fx.es%2F")
	f.Add("v=1&cid=c&crid=r&url=http%3A%2F%2Fx.es%2F&ev=click%40100,move%40200")
	f.Add("")
	f.Add("&&&=%%%")
	f.Add("v=9")
	f.Fuzz(func(t *testing.T, raw string) {
		p, err := Decode(raw)
		if err != nil {
			return
		}
		// Accepted payloads must be internally valid and re-decodable.
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode accepted invalid payload: %v", err)
		}
		q, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q.CampaignID != p.CampaignID || q.PageURL != p.PageURL || len(q.Events) != len(p.Events) {
			t.Fatalf("round trip drift: %+v vs %+v", p, q)
		}
	})
}

// FuzzDecodeEventUpdate checks the incremental-event parser never
// panics and classifies consistently.
func FuzzDecodeEventUpdate(f *testing.F) {
	f.Add("ev:click@100")
	f.Add("ev:move@0")
	f.Add("ev:")
	f.Add("not an event")
	f.Add("ev:vis@500:0.750")
	f.Fuzz(func(t *testing.T, raw string) {
		e, isEvent, err := DecodeEventUpdate(raw)
		if err == nil && isEvent {
			// Valid events survive a re-encode/re-decode cycle (the
			// textual form may differ, e.g. fraction precision).
			e2, isEvent2, err := DecodeEventUpdate(EncodeEventUpdate(e))
			if err != nil || !isEvent2 {
				t.Fatalf("re-decode of %q failed: %v", raw, err)
			}
			if e2.Kind != e.Kind || e2.At != e.At {
				t.Fatalf("round trip drift: %+v vs %+v", e, e2)
			}
		}
	})
}

// FuzzDecodeConversion checks the conversion parser never panics and
// accepted conversions round trip.
func FuzzDecodeConversion(f *testing.F) {
	f.Add(Conversion{CampaignID: "c", Action: "a", ValueCents: 1}.EncodeQuery())
	f.Add("v=1&t=conv&cid=c&action=a")
	f.Add("t=conv")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		c, err := DecodeConversion(raw)
		if err != nil {
			return
		}
		got, err := DecodeConversion(c.EncodeQuery())
		if err != nil || got != c {
			t.Fatalf("round trip drift: %+v vs %+v (%v)", c, got, err)
		}
	})
}
