package beacon

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mathrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"adaudit/internal/simclock"
	"adaudit/internal/trace"
	"adaudit/internal/wsproto"
)

// ErrSessionDead is returned by session operations after the underlying
// connection failed. A Report in flight treats it as a signal to
// reconnect and resume the impression under the same nonce.
var ErrSessionDead = errors.New("beacon: session connection died")

// Client replays the beacon's network behaviour from Go: it opens a
// WebSocket to the collector, sends the impression payload as a text
// frame, optionally streams interaction updates, and holds the
// connection open for the exposure duration — exactly the traffic the
// injected JavaScript generates, so the collector cannot tell them
// apart. Used by the simulator's device fleet and by integration tests.
//
// Real beacon links fail — mobile radios drop, NATs time out, pages are
// killed mid-exposure — so the client carries the retry discipline the
// paper's §4.1 loss model prices in: dials retry with capped
// exponential backoff plus jitter, and Report reconnects a session that
// dies mid-exposure, resuming the exposure clock under the same
// impression nonce so the collector deduplicates instead of
// double-counting. An explicit Retry-After hint from the server — a 503
// handshake rejection header, or a 1012/1013 close frame with a
// "retry-after=<dur>" reason — floors the next backoff delay, so shed
// clients return when the server expects capacity rather than when the
// jitter schedule guesses. The zero value keeps the historical
// single-attempt behaviour.
type Client struct {
	// CollectorURL is the ws:// endpoint of the collector.
	CollectorURL string
	// Dialer customises the underlying WebSocket dial (e.g. NetDial for
	// tests, WrapConn for fault injection). The zero value works.
	Dialer wsproto.Dialer
	// MaxAttempts bounds connection attempts per impression — the
	// initial dial plus retries after dial or mid-session failures.
	// 0 or 1 means a single attempt (no retry).
	MaxAttempts int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it up to RetryBackoffMax. Defaults: 100ms
	// base, 5s cap. Every delay is jittered to half-to-full of its
	// nominal value so a fleet of reconnecting beacons does not
	// stampede the collector.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Jitter overrides the jitter draw (a func returning [0,1)); nil
	// uses math/rand. Tests pin it for determinism.
	Jitter func() float64
	// Clock schedules the backoff sleeps; nil uses the real clock.
	// Exposure holds stay on real time regardless — only the retry
	// discipline is virtualized, so tests can prove backoff timing
	// without slowing the impression itself.
	Clock simclock.Clock
	// Tracer, when set, samples impressions for end-to-end pipeline
	// tracing: a sampled payload carries a trace ID and send timestamp
	// (payload keys tr/trts) that the collector adopts. Nil disables
	// client-side trace origination.
	Tracer *trace.Tracer
	// Wire selects the payload encoding: WireText (the default, what
	// the JavaScript beacon speaks) or WireBinary (the length-prefixed
	// encoding Go beacons negotiate by sending their first message as a
	// WebSocket binary frame). Both wires store identical records.
	Wire string
}

// Wire encodings for Client.Wire.
const (
	WireText   = "text"
	WireBinary = "binary"
)

// NewNonce returns a fresh impression nonce: 16 random bytes, hex.
func NewNonce() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for the process anyway;
		// fall back to the time so the beacon still reports.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// attempts normalises MaxAttempts.
func (c *Client) attempts() int {
	if c.MaxAttempts < 1 {
		return 1
	}
	return c.MaxAttempts
}

// backoff returns the jittered delay before retry number retry (0 = the
// first retry).
func (c *Client) backoff(retry int) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := c.RetryBackoffMax
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	d := base
	for i := 0; i < retry && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	// Equal jitter: [d/2, d).
	j := c.Jitter
	if j == nil {
		j = mathrand.Float64
	}
	return d/2 + time.Duration(j()*float64(d/2))
}

// sleepBackoff waits out the retry delay, respecting ctx. A positive
// floor — the server's explicit Retry-After hint — overrides the
// jittered schedule when it asks for more patience: the server knows
// when it will have capacity again, the client's schedule is a guess.
func (c *Client) sleepBackoff(ctx context.Context, retry int, floor time.Duration) error {
	d := c.backoff(retry)
	if floor > d {
		d = floor
	}
	t := simclock.Or(c.Clock).NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfterValue parses a server retry hint: integer seconds (the
// HTTP Retry-After form) or a Go duration string. 0 means no hint.
func parseRetryAfterValue(s string) time.Duration {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if d, err := time.ParseDuration(s); err == nil && d > 0 {
		return d
	}
	return 0
}

// retryAfterFromReason extracts a "retry-after=<value>" token from a
// close-frame reason, e.g. "draining retry-after=2s".
func retryAfterFromReason(reason string) time.Duration {
	const key = "retry-after="
	i := strings.Index(reason, key)
	if i < 0 {
		return 0
	}
	v := reason[i+len(key):]
	if j := strings.IndexByte(v, ' '); j >= 0 {
		v = v[:j]
	}
	return parseRetryAfterValue(v)
}

// stampTrace makes the client-side sampling decision, stamping a
// fresh trace ID and send time into the payload. A payload that
// already carries trace context (a reconnect resending under the same
// nonce, or a caller-supplied ID) keeps it — one impression, one
// trace.
func (c *Client) stampTrace(p *Payload) {
	if c.Tracer == nil || p.TraceID != "" {
		return
	}
	if id, ok := c.Tracer.SampleID(); ok {
		p.TraceID = id.String()
		p.TraceSent = time.Now().UnixNano()
	}
}

// Session is a live beacon connection for one ad impression.
type Session struct {
	conn *wsproto.Conn
	// binary is true when the session negotiated the binary wire; event
	// updates then go out as binary frames too.
	binary bool
	// dead closes when the connection's read side fails — the earliest
	// client-side signal that the collector is gone.
	dead chan struct{}
	// retryAfter is the server's reconnect hint from a received close
	// frame (a 1012/1013 "retry-after=<dur>" reason). Written before
	// dead closes, read after — the channel close orders the accesses.
	retryAfter time.Duration
}

// Done returns a channel closed when the session's connection has died.
func (s *Session) Done() <-chan struct{} { return s.dead }

// RetryAfter returns the server's explicit reconnect-delay hint, if the
// session ended with a close frame carrying one (a draining or
// overloaded endpoint). Zero means no hint. Only valid once Done() has
// closed.
func (s *Session) RetryAfter() time.Duration { return s.retryAfter }

// serviceControlFrames keeps a reader on the connection so protocol
// control traffic is handled for the session's lifetime — in particular
// the collector's keep-alive pings get their automatic pongs, exactly
// as a browser's WebSocket implementation pongs beneath the page's
// JavaScript. It exits (closing the dead channel) when the connection
// dies, capturing any Retry-After hint the close frame carried.
func (s *Session) serviceControlFrames() {
	defer close(s.dead)
	for {
		if _, _, err := s.conn.ReadMessage(); err != nil {
			var ce *wsproto.CloseError
			if errors.As(err, &ce) {
				s.retryAfter = retryAfterFromReason(ce.Reason)
			}
			return
		}
	}
}

// Open connects to the collector and transmits the initial impression
// payload, retrying failed dials and sends up to the client's attempt
// budget with capped exponential backoff. The returned session keeps
// the connection (and therefore the collector's exposure clock) running
// until Close.
func (c *Client) Open(ctx context.Context, p Payload) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c.stampTrace(&p)
	var lastErr error
	var hint time.Duration
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			if err := c.sleepBackoff(ctx, attempt-1, hint); err != nil {
				return nil, err
			}
		}
		sess, h, err := c.openOnce(ctx, p)
		if err == nil {
			return sess, nil
		}
		lastErr, hint = err, h
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// openOnce makes one dial-and-send attempt. When the server rejects the
// handshake (e.g. a 503 from an overloaded endpoint), the returned
// duration carries its Retry-After hint for the caller's next backoff.
func (c *Client) openOnce(ctx context.Context, p Payload) (*Session, time.Duration, error) {
	d := c.Dialer
	if d.Header == nil {
		d.Header = http.Header{}
		// Browsers send the page origin and UA with the WS handshake;
		// the collector prefers the in-payload values but logs these.
		if p.UserAgent != "" {
			d.Header.Set("User-Agent", p.UserAgent)
		}
	}
	conn, resp, err := d.Dial(ctx, c.CollectorURL)
	if err != nil {
		var hint time.Duration
		if resp != nil {
			hint = parseRetryAfterValue(resp.Header.Get("Retry-After"))
		}
		return nil, hint, fmt.Errorf("beacon: dialing collector: %w", err)
	}
	binary := c.Wire == WireBinary
	if binary {
		err = conn.WriteMessage(wsproto.OpBinary, p.EncodeBinary())
	} else {
		err = conn.WriteText(p.Encode())
	}
	if err != nil {
		conn.Close(wsproto.CloseInternalError, "write failed")
		return nil, 0, fmt.Errorf("beacon: sending impression: %w", err)
	}
	sess := &Session{conn: conn, binary: binary, dead: make(chan struct{})}
	go sess.serviceControlFrames()
	return sess, 0, nil
}

// SendEvent streams an interaction update on the open session, using
// whichever wire the session's opening payload negotiated.
func (s *Session) SendEvent(e Event) error {
	var err error
	if s.binary {
		err = s.conn.WriteMessage(wsproto.OpBinary, EncodeBinaryEventUpdate(e))
	} else {
		err = s.conn.WriteText(EncodeEventUpdate(e))
	}
	if err != nil {
		return fmt.Errorf("beacon: sending event: %w: %w", ErrSessionDead, err)
	}
	return nil
}

// Hold keeps the session open for d (simulating the user staying on the
// page), respecting ctx cancellation. It returns ErrSessionDead as soon
// as the connection fails — a browser notices its socket dying the same
// way — so callers can reconnect instead of sleeping through a dead
// link.
func (s *Session) Hold(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-s.dead:
		return ErrSessionDead
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close ends the impression: the collector records the disconnect time
// and derives the exposure duration.
func (s *Session) Close() error {
	return s.conn.Close(wsproto.CloseNormal, "unload")
}

// Report is a convenience helper: open, hold for the exposure duration,
// send the given events at their offsets (best effort), and close. A
// close-frame failure on the success path is reported (the collector
// will have recorded an abnormal close), so callers see the session as
// the collector saw it.
//
// With MaxAttempts > 1 a session that dies mid-exposure is reopened
// under the same nonce (generated if the payload has none) and the
// exposure clock resumes where it left off: time already spent exposed
// counts, events already delivered are not resent, and the collector
// merges the resumed connection into the original impression.
func (c *Client) Report(ctx context.Context, p Payload, exposure time.Duration) (err error) {
	events := p.Events
	p.Events = nil
	if p.Nonce == "" && c.attempts() > 1 {
		// Reconnects need an identity to dedup under; single-attempt
		// clients keep the historical nonce-free wire format.
		p.Nonce = NewNonce()
	}
	// Stamp trace context once, before the reconnect loop, so every
	// reconnect resends the same trace ID and the collector's merge
	// path keeps a single causal trace for the impression.
	c.stampTrace(&p)

	start := time.Now()
	sent := 0 // events already delivered on a previous connection
	reconnects := 0
	for {
		sess, err := c.Open(ctx, p)
		if err != nil {
			return err
		}
		err = c.runExposure(ctx, sess, events, &sent, start, exposure)
		if err == nil {
			// Success path: a failed close frame means the collector
			// recorded an abnormal close — report it, don't mask it.
			return sess.Close()
		}
		_ = sess.Close()
		if ctx.Err() != nil {
			return err
		}
		reconnects++
		if reconnects >= c.attempts() {
			return err
		}
		// If the server closed the session with an explicit reconnect
		// hint (a draining gateway, an overloaded collector), floor the
		// backoff on it. Only read once the session is fully dead.
		var hint time.Duration
		select {
		case <-sess.Done():
			hint = sess.RetryAfter()
		default:
		}
		if serr := c.sleepBackoff(ctx, reconnects-1, hint); serr != nil {
			return serr
		}
	}
}

// runExposure drives one connection's share of the impression: events
// still pending at their offsets, then the remaining exposure time.
// Offsets and the remaining hold are measured against start — the first
// connection's open — so a reconnect resumes the clock rather than
// restarting it.
func (c *Client) runExposure(ctx context.Context, sess *Session, events []Event, sent *int, start time.Time, exposure time.Duration) error {
	for *sent < len(events) {
		e := events[*sent]
		if wait := e.At - time.Since(start); wait > 0 {
			if err := sess.Hold(ctx, wait); err != nil {
				return err
			}
		}
		if err := sess.SendEvent(e); err != nil {
			return err
		}
		*sent++
	}
	if remaining := exposure - time.Since(start); remaining > 0 {
		return sess.Hold(ctx, remaining)
	}
	return nil
}
