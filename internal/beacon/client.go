package beacon

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"adaudit/internal/wsproto"
)

// Client replays the beacon's network behaviour from Go: it opens a
// WebSocket to the collector, sends the impression payload as a text
// frame, optionally streams interaction updates, and holds the
// connection open for the exposure duration — exactly the traffic the
// injected JavaScript generates, so the collector cannot tell them
// apart. Used by the simulator's device fleet and by integration tests.
type Client struct {
	// CollectorURL is the ws:// endpoint of the collector.
	CollectorURL string
	// Dialer customises the underlying WebSocket dial (e.g. NetDial for
	// tests). The zero value works.
	Dialer wsproto.Dialer
}

// Session is a live beacon connection for one ad impression.
type Session struct {
	conn *wsproto.Conn
}

// serviceControlFrames keeps a reader on the connection so protocol
// control traffic is handled for the session's lifetime — in particular
// the collector's keep-alive pings get their automatic pongs, exactly
// as a browser's WebSocket implementation pongs beneath the page's
// JavaScript. It exits when the connection dies.
func (s *Session) serviceControlFrames() {
	for {
		if _, _, err := s.conn.ReadMessage(); err != nil {
			return
		}
	}
}

// Open connects to the collector and transmits the initial impression
// payload. The returned session keeps the connection (and therefore the
// collector's exposure clock) running until Close.
func (c *Client) Open(ctx context.Context, p Payload) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := c.Dialer
	if d.Header == nil {
		d.Header = http.Header{}
		// Browsers send the page origin and UA with the WS handshake;
		// the collector prefers the in-payload values but logs these.
		if p.UserAgent != "" {
			d.Header.Set("User-Agent", p.UserAgent)
		}
	}
	conn, _, err := d.Dial(ctx, c.CollectorURL)
	if err != nil {
		return nil, fmt.Errorf("beacon: dialing collector: %w", err)
	}
	if err := conn.WriteText(p.Encode()); err != nil {
		conn.Close(wsproto.CloseInternalError, "write failed")
		return nil, fmt.Errorf("beacon: sending impression: %w", err)
	}
	sess := &Session{conn: conn}
	go sess.serviceControlFrames()
	return sess, nil
}

// SendEvent streams an interaction update on the open session.
func (s *Session) SendEvent(e Event) error {
	if err := s.conn.WriteText(EncodeEventUpdate(e)); err != nil {
		return fmt.Errorf("beacon: sending event: %w", err)
	}
	return nil
}

// Hold keeps the session open for d (simulating the user staying on the
// page), respecting ctx cancellation.
func (s *Session) Hold(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close ends the impression: the collector records the disconnect time
// and derives the exposure duration.
func (s *Session) Close() error {
	return s.conn.Close(wsproto.CloseNormal, "unload")
}

// Report is a convenience helper: open, hold for the exposure duration,
// send the given events at their offsets (best effort), and close.
func (c *Client) Report(ctx context.Context, p Payload, exposure time.Duration) error {
	events := p.Events
	p.Events = nil
	sess, err := c.Open(ctx, p)
	if err != nil {
		return err
	}
	defer sess.Close()

	start := time.Now()
	for _, e := range events {
		wait := e.At - time.Since(start)
		if wait > 0 {
			if err := sess.Hold(ctx, wait); err != nil {
				return err
			}
		}
		if err := sess.SendEvent(e); err != nil {
			return err
		}
	}
	remaining := exposure - time.Since(start)
	if remaining > 0 {
		if err := sess.Hold(ctx, remaining); err != nil {
			return err
		}
	}
	return nil
}
