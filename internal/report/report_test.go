package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/stats"
)

func sampleCampaigns() []adnet.Campaign {
	return adnet.PaperCampaigns()[:2]
}

func sampleHistogram(t *testing.T, vals ...float64) *stats.Histogram {
	t.Helper()
	lb, err := stats.NewLogBuckets(10, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	h := stats.NewHistogram(lb)
	for _, v := range vals {
		h.Observe(v)
	}
	return h
}

func sampleAudits(t *testing.T) []audit.CampaignAudit {
	t.Helper()
	return []audit.CampaignAudit{
		{
			ID: "Research-010",
			BrandSafety: audit.BrandSafetyResult{
				CampaignID:           "Research-010",
				Venn:                 stats.Venn{OnlyA: 57, Both: 43, OnlyB: 10},
				AnonymousImpressions: 12,
			},
			Context: audit.ContextResult{
				AuditImpressions:      100,
				MeaningfulImpressions: 3,
				VendorClaimed:         5,
				VendorTotal:           100,
			},
			Popularity: audit.PopularityResult{
				Publishers:  sampleHistogram(t, 5, 500, 50_000),
				Impressions: sampleHistogram(t, 5, 5, 500, 50_000, 5_000_000),
			},
			Viewability: audit.ViewabilityResult{Impressions: 100, ViewableUB: 56},
			Fraud: audit.FraudResult{
				DistinctIPs: 50, DataCenterIPs: 2,
				Impressions: 100, DataCenterImpressions: 4,
				Publishers: 20, PublishersServingDC: 3,
			},
		},
		{
			ID:          "Research-020",
			Popularity:  audit.PopularityResult{Publishers: sampleHistogram(t, 7), Impressions: sampleHistogram(t, 7)},
			Viewability: audit.ViewabilityResult{Impressions: 10, ViewableUB: 5},
		},
	}
}

func sampleFrequency() audit.FrequencyResult {
	return audit.FrequencyResult{
		Points: []audit.UserFrequency{
			{CampaignID: "c", UserKey: "heavy", Impressions: 150, MedianInterArrival: 15 * time.Second},
			{CampaignID: "c", UserKey: "mid", Impressions: 12, MedianInterArrival: 5 * time.Minute},
			{CampaignID: "c", UserKey: "light", Impressions: 1},
		},
		UsersOver10:  2,
		UsersOver100: 1,
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, sampleCampaigns()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Research-010", "0.10€", "research", "2016-03-29", "Budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1(t *testing.T) {
	var buf bytes.Buffer
	agg := audit.BrandSafetyResult{Venn: stats.Venn{OnlyA: 100, Both: 100, OnlyB: 20}}
	if err := Figure1(&buf, agg, sampleAudits(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ALL CAMPAIGNS") {
		t.Fatal("missing aggregate row")
	}
	if !strings.Contains(out, "50.00%") { // 100/200 unreported
		t.Fatalf("missing aggregate unreported pct:\n%s", out)
	}
	if !strings.Contains(out, "57.00%") { // Research-010: 57/100
		t.Fatalf("missing per-campaign pct:\n%s", out)
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf, sampleAudits(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3.00%") || !strings.Contains(out, "5.00%") {
		t.Fatalf("table 2 fractions missing:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure2(&buf, sampleAudits(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[1, 10)", "[10K, 100K)", "Top 50K", "publishers across rank buckets", "impressions across rank buckets"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 missing %q", want)
		}
	}
	if err := Figure2(&buf, nil); err == nil {
		t.Fatal("figure 2 accepted empty input")
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf, sampleAudits(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "56.00%") {
		t.Fatalf("table 3 missing viewability:\n%s", buf.String())
	}
}

func TestFigure3(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure3(&buf, sampleFrequency()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "> 10 impressions of the same ad: 2") {
		t.Fatalf("figure 3 missing over-10 count:\n%s", out)
	}
	if !strings.Contains(out, "> 100 impressions of the same ad: 1") {
		t.Fatalf("figure 3 missing over-100 count:\n%s", out)
	}
	// Singleton users (no inter-arrival) are excluded from the bins.
	if strings.Contains(out, "[1, 2)") {
		t.Fatal("figure 3 binned singleton users")
	}
}

func TestTable5(t *testing.T) {
	audits := sampleAudits(t)
	audits[0].Sellers = audit.SellerAuditResult{
		CampaignID:              "Research-010",
		RowsChecked:             10,
		AuthorizedImpressions:   80,
		UnauthorizedImpressions: 20,
		UnauthorizedPairs: []audit.SellerPair{
			{Publisher: "premium.example", SellerID: "direct:mfa.example", Impressions: 20},
		},
	}
	audits[0].Pooling = audit.PoolingResult{
		CampaignID: "Research-010", SellersChecked: 4, MaxGroupSpan: 5, GroupLimit: 3,
		PooledSellers: []audit.PooledSeller{
			{SellerID: "pool-a", Publishers: 6, OwnerGroups: 5, Impressions: 40},
		},
	}
	audits[0].Behavior = audit.BehaviorResult{
		CampaignID: "Research-010", Impressions: 100,
		BotUsers:       []audit.BotUser{{UserKey: "timer-bot", Impressions: 24, CadenceCV: 0.001}},
		BotImpressions: 24,
		InflatedPublishers: []audit.InflatedPublisher{
			{Publisher: "stacked.example", Impressions: 15, Measured: 12,
				MeanVisibleFraction: 0.02, ViewableShare: 0.9},
		},
		InflatedImpressions: 15,
	}
	var buf bytes.Buffer
	if err := Table5(&buf, audits); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 5",
		"20.00%", // unauthorized rate 20/100
		"unauthorized seller direct:mfa.example on premium.example (20 imps)",
		"pooled seller pool-a spans 5 owner groups over 6 publishers (40 imps)",
		"bot user timer-bot",
		"residential-proxy",
		"inflated placement stacked.example",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 5 missing %q:\n%s", want, out)
		}
	}
	// Clean campaigns stay single-line: no detail rows for Research-020.
	if strings.Contains(out, "Research-020: ") {
		t.Fatalf("table 5 printed detail rows for a clean campaign:\n%s", out)
	}
}

func TestTable4(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4(&buf, sampleAudits(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4.00%") { // 2/50 IPs
		t.Fatalf("table 4 missing IP pct:\n%s", out)
	}
	if !strings.Contains(out, "15.00%") { // 3/20 publishers
		t.Fatalf("table 4 missing publisher pct:\n%s", out)
	}
}

func TestFigure2CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure2CSV(&buf, sampleAudits(t)); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 rows per campaign.
	if len(recs) != 1+2*2 {
		t.Fatalf("csv rows = %d", len(recs))
	}
	if recs[0][0] != "campaign" || recs[1][1] != "publishers" || recs[2][1] != "impressions" {
		t.Fatalf("csv layout unexpected: %v", recs[0:3])
	}
	if err := Figure2CSV(&buf, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestFigure3CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure3CSV(&buf, sampleFrequency()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 multi-impression users (the singleton is excluded).
	if len(recs) != 3 {
		t.Fatalf("csv rows = %d: %v", len(recs), recs)
	}
	if recs[1][1] != "150" || recs[1][2] != "15.000" {
		t.Fatalf("csv content unexpected: %v", recs[1])
	}
}

func TestFullRendersInPaperOrder(t *testing.T) {
	var buf bytes.Buffer
	full := &audit.FullReport{
		PerCampaign: sampleAudits(t),
		Aggregate:   audit.BrandSafetyResult{Venn: stats.Venn{OnlyA: 1, Both: 1}},
		Frequency:   sampleFrequency(),
	}
	if err := Full(&buf, sampleCampaigns(), full); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	order := []string{"Table 1", "Figure 1", "Table 2", "Figure 2", "Table 3", "Figure 3", "Table 4"}
	last := -1
	for _, marker := range order {
		idx := strings.Index(out, marker)
		if idx < 0 {
			t.Fatalf("missing %q", marker)
		}
		if idx < last {
			t.Fatalf("%q out of order", marker)
		}
		last = idx
	}
}

func TestTableConversions(t *testing.T) {
	var buf bytes.Buffer
	results := []audit.ConversionResult{
		{
			CampaignID: "c1", Impressions: 1000, Clicks: 10, Conversions: 3,
			ValueCents:            7500,
			DataCenterImpressions: 100, DataCenterClicks: 15,
			ByExposure: []audit.ExposureBucket{
				{Lo: 1, Hi: 1, Users: 100, Conversions: 1},
				{Lo: 2, Hi: 3, Users: 50, Conversions: 2},
				{Lo: 51, Hi: 1 << 30, Users: 5, Conversions: 0},
			},
		},
	}
	if err := TableConversions(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"conversion audit", "c1", "1.00%", // CTR 10/1000
		"75.00€", // value
		"15.00%", // DC CTR 15/100
		"2-3",    // bucket label
		"51+",    // open-ended bucket label
		"0.0100", // conv/user for bucket 1
	} {
		if !strings.Contains(out, want) {
			t.Errorf("conversion table missing %q:\n%s", want, out)
		}
	}
}

func TestTableInteractions(t *testing.T) {
	var buf bytes.Buffer
	results := []audit.InteractionResult{
		{
			CampaignID: "c1", Impressions: 1000,
			UAFlagged: 40, DCFlagged: 80, Corroborated: 30,
			SpoofedUA: 50, ResidentialAutomation: 10,
			ClickNoMove: 12, ClickNoMoveDC: 9,
			SuspiciousUsers: []string{"u1", "u2"},
		},
	}
	if err := TableInteractions(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"behavioural", "c1", "62.50%", "12 (9 DC)", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("interactions table missing %q:\n%s", want, out)
		}
	}
}
