package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"adaudit/internal/audit"
)

// Figure2CSV writes the rank-bucket series as CSV (one row per campaign
// and metric), ready for external plotting.
func Figure2CSV(w io.Writer, perCampaign []audit.CampaignAudit) error {
	if len(perCampaign) == 0 {
		return fmt.Errorf("report: figure 2 csv needs at least one campaign")
	}
	cw := csv.NewWriter(w)
	buckets := perCampaign[0].Popularity.Publishers.Buckets
	header := []string{"campaign", "metric"}
	for i := 0; i < buckets.NumBuckets(); i++ {
		header = append(header, buckets.Label(i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, ca := range perCampaign {
		rowP := []string{ca.ID, "publishers"}
		rowI := []string{ca.ID, "impressions"}
		for i := 0; i < buckets.NumBuckets(); i++ {
			rowP = append(rowP, strconv.FormatFloat(ca.Popularity.Publishers.Fraction(i), 'f', 6, 64))
			rowI = append(rowI, strconv.FormatFloat(ca.Popularity.Impressions.Fraction(i), 'f', 6, 64))
		}
		if err := cw.Write(rowP); err != nil {
			return err
		}
		if err := cw.Write(rowI); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Figure3CSV writes the raw frequency scatter (one row per user/ad
// pair), the exact data behind the paper's log-log plot.
func Figure3CSV(w io.Writer, freq audit.FrequencyResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"campaign", "impressions", "median_iat_seconds"}); err != nil {
		return err
	}
	for _, p := range freq.Points {
		if p.Impressions < 2 {
			continue
		}
		if err := cw.Write([]string{
			p.CampaignID,
			strconv.Itoa(p.Impressions),
			strconv.FormatFloat(p.MedianInterArrival.Seconds(), 'f', 3, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
