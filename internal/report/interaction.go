package report

import (
	"fmt"
	"io"

	"adaudit/internal/audit"
)

// TableInteractions renders the behavioural fraud signals that
// corroborate Table 4's IP-based detection: automation User-Agents,
// UA-spoofing data-center traffic, and click-without-pointer activity.
func TableInteractions(w io.Writer, results []audit.InteractionResult) error {
	fmt.Fprintln(w, "Extension: behavioural fraud signals")
	tw := newTab(w)
	fmt.Fprintln(tw, "Campaign ID\tImpressions\tUA bots\tDC imps\tCorroborated\tDC w/ spoofed UA\tResid. automation\tClick w/o mouse\tSuspicious users")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d (%s)\t%d\t%d (%d DC)\t%d\n",
			r.CampaignID, r.Impressions, r.UAFlagged, r.DCFlagged,
			r.Corroborated, r.SpoofedUA, pct(r.SpoofShare()),
			r.ResidentialAutomation,
			r.ClickNoMove, r.ClickNoMoveDC,
			len(r.SuspiciousUsers))
	}
	return tw.Flush()
}
