// Package report renders audit results as the tables and figures of the
// paper's evaluation section: aligned text tables for human reading and
// CSV series for plotting. Each Render function corresponds to one
// artifact (Table 1–4, Figure 1–3) and prints the same rows/series the
// paper reports.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/stats"
)

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

func pct(v float64) string {
	return fmt.Sprintf("%.2f%%", v*100)
}

// Table1 prints the campaign roster.
func Table1(w io.Writer, campaigns []adnet.Campaign) error {
	fmt.Fprintln(w, "Table 1: campaigns")
	tw := newTab(w)
	fmt.Fprintln(tw, "Campaign ID\t# Impressions\tCPM\tKeywords\tGeo\tStart\tEnd\tBudget")
	for _, c := range campaigns {
		fmt.Fprintf(tw, "%s\t%d\t%.2f€\t%s\t%s\t%s\t%s\t%.2f€\n",
			c.ID, c.Impressions, c.CPM, strings.Join(c.Keywords, ", "), c.Geo,
			c.Start.Format("2006-01-02"), c.End.Format("2006-01-02"), c.Budget())
	}
	return tw.Flush()
}

// Figure1 prints the brand-safety Venn partition (audit-only / both /
// vendor-only publishers) for the aggregate and each campaign.
func Figure1(w io.Writer, aggregate audit.BrandSafetyResult, perCampaign []audit.CampaignAudit) error {
	fmt.Fprintln(w, "Figure 1: publishers reported by the audit vs. the vendor")
	tw := newTab(w)
	fmt.Fprintln(tw, "Scope\tAudit only\tBoth\tVendor only\t% unreported by vendor\t% missed by audit\tAnon. imps")
	row := func(scope string, r audit.BrandSafetyResult) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%d\n",
			scope, r.Venn.OnlyA, r.Venn.Both, r.Venn.OnlyB,
			pct(r.FractionUnreported()), pct(r.FractionAuditMissed()),
			r.AnonymousImpressions)
	}
	row("ALL CAMPAIGNS", aggregate)
	for _, ca := range perCampaign {
		row(ca.ID, ca.BrandSafety)
	}
	return tw.Flush()
}

// Table2 prints the contextual-relevance comparison.
func Table2(w io.Writer, perCampaign []audit.CampaignAudit) error {
	fmt.Fprintln(w, "Table 2: impressions on contextually meaningful publishers")
	tw := newTab(w)
	fmt.Fprintln(tw, "Campaign ID\tAuditing Methodology\tVendor Report")
	for _, ca := range perCampaign {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", ca.ID, pct(ca.Context.AuditFraction()), pct(ca.Context.VendorFraction()))
	}
	return tw.Flush()
}

// Figure2 prints the rank-bucket distributions of publishers (top) and
// impressions (bottom) for the given campaigns, one column per bucket.
func Figure2(w io.Writer, perCampaign []audit.CampaignAudit) error {
	if len(perCampaign) == 0 {
		return fmt.Errorf("report: figure 2 needs at least one campaign")
	}
	buckets := perCampaign[0].Popularity.Publishers.Buckets
	header := "Campaign ID"
	for i := 0; i < buckets.NumBuckets(); i++ {
		header += "\t" + buckets.Label(i)
	}

	fmt.Fprintln(w, "Figure 2 (top): distribution of publishers across rank buckets")
	tw := newTab(w)
	fmt.Fprintln(tw, header)
	for _, ca := range perCampaign {
		fmt.Fprint(tw, ca.ID)
		for i := 0; i < buckets.NumBuckets(); i++ {
			fmt.Fprintf(tw, "\t%s", pct(ca.Popularity.Publishers.Fraction(i)))
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "Figure 2 (bottom): distribution of impressions across rank buckets")
	tw = newTab(w)
	fmt.Fprintln(tw, header)
	for _, ca := range perCampaign {
		fmt.Fprint(tw, ca.ID)
		for i := 0; i < buckets.NumBuckets(); i++ {
			fmt.Fprintf(tw, "\t%s", pct(ca.Popularity.Impressions.Fraction(i)))
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "Summary: share inside Alexa-style Top 50K")
	tw = newTab(w)
	fmt.Fprintln(tw, "Campaign ID\tPublishers\tImpressions")
	for _, ca := range perCampaign {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", ca.ID,
			pct(ca.Popularity.TopKPublisherFraction(50_000)),
			pct(ca.Popularity.TopKImpressionFraction(50_000)))
	}
	return tw.Flush()
}

// Table3 prints the viewability upper bound per campaign.
func Table3(w io.Writer, perCampaign []audit.CampaignAudit) error {
	fmt.Fprintln(w, "Table 3: impressions fulfilling the upper-bound viewability criterion (>= 1 s)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Campaign ID\tView >= 1s\tMedian exposure\tMRC viewable (measured subset)")
	for _, ca := range perCampaign {
		mrc := "n/a"
		if ca.Viewability.MeasuredImpressions > 0 {
			mrc = fmt.Sprintf("%s of %d", pct(ca.Viewability.MRCFraction()),
				ca.Viewability.MeasuredImpressions)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2fs\t%s\n", ca.ID, pct(ca.Viewability.Fraction()),
			ca.Viewability.ExposureSummary.Median, mrc)
	}
	return tw.Flush()
}

// Figure3 prints the frequency scatter summarised into log-spaced
// impression bins: per bin, the number of users and the quartiles of
// their median inter-arrival times.
func Figure3(w io.Writer, freq audit.FrequencyResult) error {
	fmt.Fprintln(w, "Figure 3: impressions per user vs. median inter-arrival time")
	lb, err := stats.NewLogBuckets(2, 1<<20)
	if err != nil {
		return err
	}
	type bin struct {
		users int
		iats  []float64
	}
	bins := map[int]*bin{}
	for _, p := range freq.Points {
		if p.Impressions < 2 {
			continue
		}
		i := lb.Index(float64(p.Impressions))
		b := bins[i]
		if b == nil {
			b = &bin{}
			bins[i] = b
		}
		b.users++
		b.iats = append(b.iats, p.MedianInterArrival.Seconds())
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "Impressions/user\tUsers\tMedian IAT p25\tp50\tp75")
	for i := 0; i < lb.NumBuckets(); i++ {
		b := bins[i]
		if b == nil {
			continue
		}
		s := stats.Summarize(b.iats)
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", lb.Label(i), b.users,
			fmtSeconds(s.P25), fmtSeconds(s.Median), fmtSeconds(s.P75))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Users with > 10 impressions of the same ad: %d\n", freq.UsersOver10)
	fmt.Fprintf(w, "Users with > 100 impressions of the same ad: %d\n", freq.UsersOver100)
	fmt.Fprintf(w, "Users over 100 impressions with median gap < 1 min: %d\n",
		freq.MedianIATBelow(100, time.Minute))
	return nil
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Second / 10).String()
}

// Table4 prints the data-center traffic statistics.
func Table4(w io.Writer, perCampaign []audit.CampaignAudit) error {
	fmt.Fprintln(w, "Table 4: data-center (cloud) traffic per campaign")
	tw := newTab(w)
	fmt.Fprintln(tw, "Campaign ID\t% Cloud IPs\t% Impressions to cloud IPs\t% Publishers showing ads to cloud IPs")
	for _, ca := range perCampaign {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", ca.ID,
			pct(ca.Fraud.PctDataCenterIPs()),
			pct(ca.Fraud.PctDataCenterImpressions()),
			pct(ca.Fraud.PctPublishersServingDC()))
	}
	return tw.Flush()
}

// Table5 prints the adversarial dimensions: the seller cross-check and
// pooling detector verdicts on the vendor report, and the behavioral
// bot / placement-inflation scores on the observed traffic. These
// extend the paper's Table 4 beyond data-center IPs to fraud the IP
// cascade cannot see.
func Table5(w io.Writer, perCampaign []audit.CampaignAudit) error {
	fmt.Fprintln(w, "Table 5: adversarial supply-chain and behavioral detectors")
	tw := newTab(w)
	fmt.Fprintln(tw, "Campaign ID\tUnauthorized sellers\tPooled sellers\tBot users\tInflated placements")
	for _, ca := range perCampaign {
		fmt.Fprintf(tw, "%s\t%d pairs (%s of imps)\t%d (max span %d/%d)\t%d (%s of imps)\t%d (%s of imps)\n",
			ca.ID,
			len(ca.Sellers.UnauthorizedPairs), pct(ca.Sellers.UnauthorizedRate()),
			len(ca.Pooling.PooledSellers), ca.Pooling.MaxGroupSpan, ca.Pooling.GroupLimit,
			len(ca.Behavior.BotUsers), pct(ca.Behavior.PctBotImpressions()),
			len(ca.Behavior.InflatedPublishers), pct(ca.Behavior.PctInflatedImpressions()))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Detail rows only for campaigns where a detector fired — the
	// clean-path rendering stays one line per campaign.
	for _, ca := range perCampaign {
		for _, p := range ca.Sellers.UnauthorizedPairs {
			fmt.Fprintf(w, "  %s: unauthorized seller %s on %s (%d imps)\n",
				ca.ID, p.SellerID, p.Publisher, p.Impressions)
		}
		for _, ps := range ca.Pooling.PooledSellers {
			fmt.Fprintf(w, "  %s: pooled seller %s spans %d owner groups over %d publishers (%d imps)\n",
				ca.ID, ps.SellerID, ps.OwnerGroups, ps.Publishers, ps.Impressions)
		}
		for _, u := range ca.Behavior.BotUsers {
			kind := "residential-proxy"
			if u.DataCenter {
				kind = "data-center"
			}
			fmt.Fprintf(w, "  %s: bot user %.24s… %d imps, cadence CV %.4f (%s)\n",
				ca.ID, u.UserKey, u.Impressions, u.CadenceCV, kind)
		}
		for _, p := range ca.Behavior.InflatedPublishers {
			fmt.Fprintf(w, "  %s: inflated placement %s: %d imps, mean visible %s, viewable share %s\n",
				ca.ID, p.Publisher, p.Impressions, pct(p.MeanVisibleFraction), pct(p.ViewableShare))
		}
	}
	return nil
}

// Full prints every artifact of the evaluation in paper order.
func Full(w io.Writer, campaigns []adnet.Campaign, rep *audit.FullReport) error {
	if err := Table1(w, campaigns); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Figure1(w, rep.Aggregate, rep.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Table2(w, rep.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Figure2(w, rep.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Table3(w, rep.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Figure3(w, rep.Frequency); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Table4(w, rep.PerCampaign); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return Table5(w, rep.PerCampaign)
}
