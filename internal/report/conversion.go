package report

import (
	"fmt"
	"io"

	"adaudit/internal/audit"
)

// TableConversions renders the conversion audit (the paper's §2
// conversion-ratio metric, deferred there to future work): per-campaign
// totals, the data-center segment, and the conversion-vs-frequency
// curve that justifies the cap-of-10 reference value.
func TableConversions(w io.Writer, results []audit.ConversionResult) error {
	fmt.Fprintln(w, "Extension: conversion audit")
	tw := newTab(w)
	fmt.Fprintln(tw, "Campaign ID\tImpressions\tClicks\tConv.\tCTR\tConv. ratio\tValue\tDC CTR\tDC conv.")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%.2f€\t%s\t%d\n",
			r.CampaignID, r.Impressions, r.Clicks, r.Conversions,
			pct(r.CTR()), pct(r.ConversionRatio()),
			float64(r.ValueCents)/100,
			pct(r.DataCenterCTR()), r.DataCenterConversions)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "Conversions per user vs. exposure frequency (all campaigns pooled)")
	tw = newTab(w)
	fmt.Fprintln(tw, "Exposures/user\tUsers\tConversions\tConv./user")
	pooled := map[[2]int]*audit.ExposureBucket{}
	var order [][2]int
	for _, r := range results {
		for _, b := range r.ByExposure {
			k := [2]int{b.Lo, b.Hi}
			agg := pooled[k]
			if agg == nil {
				agg = &audit.ExposureBucket{Lo: b.Lo, Hi: b.Hi}
				pooled[k] = agg
				order = append(order, k)
			}
			agg.Users += b.Users
			agg.Impressions += b.Impressions
			agg.Conversions += b.Conversions
		}
	}
	for _, k := range order {
		b := pooled[k]
		label := fmt.Sprintf("%d", b.Lo)
		switch {
		case b.Hi >= 1<<29:
			label = fmt.Sprintf("%d+", b.Lo)
		case b.Hi != b.Lo:
			label = fmt.Sprintf("%d-%d", b.Lo, b.Hi)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\n", label, b.Users, b.Conversions, b.ConversionsPerUser())
	}
	return tw.Flush()
}
