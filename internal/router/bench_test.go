package router

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"testing"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/store"
)

// BenchmarkRouterForward measures the full sharded path per
// impression: beacon dial → router session → shard-pool trunk batch →
// collector commit → ack back through the router. One shard keeps the
// comparison honest: against the collector package's
// BenchmarkWebSocketSession (the direct network path) the delta is the
// router hop itself — hash, spill bookkeeping and the extra trunk leg —
// not a change in shard fan-out. scripts/bench_compare.sh records both
// in BENCH_router.json and gates the hop's allocation overhead.
func BenchmarkRouterForward(b *testing.B) {
	// Silence both processes: bench_compare.sh parses the
	// `BenchmarkRouterForward ...` result line from stdout, and
	// slog.Default() would interleave trunk-established lines with it.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	st := store.New()
	c, err := collector.New(collector.Config{
		Store:            st,
		Anonymizer:       ipmeta.NewAnonymizer([]byte("bench")),
		TrunkToken:       testTrunkToken,
		DisableTelemetry: true,
		Logger:           quiet,
	})
	if err != nil {
		b.Fatal(err)
	}
	csrv, err := collector.NewServer(c, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go csrv.Serve(ctx)

	cfg := fastRouterConfig([]string{fmt.Sprintf("ws://%s/trunk", csrv.Addr())})
	cfg.BatchAge = time.Millisecond // latency-bound loop: flush eagerly
	cfg.Logger = quiet
	r, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rsrv, err := NewServer(r, "127.0.0.1:0", WithDrainGrace(10*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	rdone := make(chan struct{})
	go func() {
		defer close(rdone)
		_ = rsrv.Serve(rctx)
	}()
	defer func() {
		rcancel()
		<-rdone
	}()

	client := &beacon.Client{CollectorURL: rsrv.BeaconURL()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := beacon.Payload{
			CampaignID: "bench",
			CreativeID: "cr",
			PageURL:    "http://pub.es/p",
			UserAgent:  "Mozilla/5.0 Chrome/49.0",
			Nonce:      fmt.Sprintf("bench-%08d", i),
		}
		sess, err := client.Open(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The router acks from its spill buffer; wait for every commit to
	// land in the shard so the bench accounts the real work.
	deadline := time.Now().Add(30 * time.Second)
	for st.Len() < b.N && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Len() < b.N {
		b.Fatalf("only %d/%d commits reached the shard", st.Len(), b.N)
	}
}
