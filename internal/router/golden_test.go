package router

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"adaudit/internal/beacon"
)

// -update regenerates the golden files from the live fixture:
//
//	go test ./internal/router -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("response differs from %s (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestMetricsJSONShapeGolden pins the shape of the router's
// /api/metrics: every registered instrument's key and kind (scalar or
// histogram). With two shards configured, the per-shard series must fan
// out under shard_id labels — the golden is what pins that a dashboard
// can tell shard 0's spill from shard 1's. Values are timing-dependent,
// so only the schema is captured. One report is pushed through the full
// routed path first so the forward/batch histograms are live, not
// hypothetical.
func TestMetricsJSONShapeGolden(t *testing.T) {
	f := startShards(t, 2, nil, nil)
	r, rsrv := startRouter(t, fastRouterConfig(f.trunkURLs()))
	waitFor(t, 5*time.Second, "shard trunks to establish", func() bool { return allTrunksUp(r) })

	cl := &beacon.Client{CollectorURL: rsrv.BeaconURL()}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Report(ctx, beacon.Payload{
		CampaignID: "camp-golden", CreativeID: "cr",
		PageURL: "http://pub.example.com/p", UserAgent: "UA",
		Nonce: "golden-0001",
	}, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "report committed through a shard trunk", func() bool {
		return f.totalLen() == 1
	})

	resp, err := http.Get("http://" + rsrv.Addr().String() + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	var lines []string
	sawShardLabel := false
	for key, raw := range metrics {
		kind := "scalar"
		if strings.HasPrefix(strings.TrimSpace(string(raw)), "{") {
			kind = "histogram"
		}
		if strings.Contains(key, `shard_id="1"`) {
			sawShardLabel = true
		}
		lines = append(lines, key+" "+kind+"\n")
	}
	if !sawShardLabel {
		t.Errorf("no metric key carries a shard_id=\"1\" label; per-shard series are not fanning out")
	}
	sort.Strings(lines)
	golden(t, "metrics_shape.txt", []byte(strings.Join(lines, "")))
}
