package router

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/faultnet"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/shardmerge"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
)

// TestChaosRouterShardRestart is the sharded tier's acceptance test: a
// beacon fleet reports through a chaos proxy into the router while one
// of the two shards is killed mid-run, its store recovered from the WAL
// alone, and a fresh collector — empty stream-dedup cache, nonce cache
// reseeded from the recovered records — rebinds the same address. The
// router's circuit breakers must re-home its trunks onto the restarted
// shard and flush the spill built up during the outage. Invariants:
// every acked impression is present exactly once in the union of the
// shard stores, each on exactly the shard its nonce hashes to, and the
// merged per-shard streaming audit equals the batch FullAudit over the
// combined store.
func TestChaosRouterShardRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real time for kills, restarts and replays")
	}
	walPath := filepath.Join(t.TempDir(), "shard0.wal")
	wal, err := store.OpenWAL(walPath, store.WALOptions{Policy: store.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	st0 := store.New()
	st0.AttachWAL(wal)
	st1 := store.New()

	newColl := func(s *store.Store) *collector.Collector {
		c, err := collector.New(collector.Config{
			Store:             s,
			Anonymizer:        ipmeta.NewAnonymizer([]byte("rtchaos")),
			TrunkToken:        testTrunkToken,
			KeepAliveInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serveShard := func(c *collector.Collector, addr string) (*collector.Server, func()) {
		srv, err := collector.NewServer(c, addr)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(ctx)
		}()
		stopped := false
		stop := func() {
			if stopped {
				return
			}
			stopped = true
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("shard server did not stop")
			}
		}
		t.Cleanup(stop)
		return srv, stop
	}
	srv0, stop0 := serveShard(newColl(st0), "127.0.0.1:0")
	srv1, _ := serveShard(newColl(st1), "127.0.0.1:0")
	shard0Addr := srv0.Addr().String()

	cfg := fastRouterConfig([]string{
		fmt.Sprintf("ws://%s/trunk", shard0Addr),
		fmt.Sprintf("ws://%s/trunk", srv1.Addr().String()),
	})
	cfg.TrunksPerShard = 2
	r, rsrv := startRouter(t, cfg)
	waitFor(t, 5*time.Second, "shard trunks to establish", func() bool { return allTrunksUp(r) })

	// Client-leg chaos: beacon connections are killed mid-exposure and
	// occasionally reset mid-write; the client retries with its nonce.
	clientPlan := &faultnet.Plan{
		Seed:           20160329,
		KillAfter:      60 * time.Millisecond,
		KillJitter:     120 * time.Millisecond,
		ResetWriteProb: 0.02,
	}
	clientProxy, err := faultnet.NewProxy("127.0.0.1:0", rsrv.Addr().String(), clientPlan)
	if err != nil {
		t.Fatal(err)
	}
	defer clientProxy.Close()
	clientURL := fmt.Sprintf("ws://%s/beacon", clientProxy.Addr())

	pubs, err := publisher.NewUniverse(publisher.Config{Seed: 5, NumPublishers: 60})
	if err != nil {
		t.Fatal(err)
	}

	const fleet = 32
	type outcome struct {
		nonce string
		acked bool
	}
	outcomes := make([]outcome, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger starts so the fleet's activity spans the shard
			// outage window instead of finishing before it.
			time.Sleep(time.Duration(i) * 25 * time.Millisecond)
			cl := &beacon.Client{
				CollectorURL:    clientURL,
				MaxAttempts:     12,
				RetryBackoff:    5 * time.Millisecond,
				RetryBackoffMax: 40 * time.Millisecond,
			}
			p := beacon.Payload{
				CampaignID: "RouterChaos-001",
				CreativeID: fmt.Sprintf("cr-%d", i),
				PageURL:    fmt.Sprintf("http://%s/page", pubs.At(i%8).Domain),
				UserAgent:  "Mozilla/5.0 Chaos",
				Nonce:      fmt.Sprintf("rtchaos-%04d", i),
				Events: []beacon.Event{
					{Kind: beacon.EventMouseMove, At: 40 * time.Millisecond},
					{Kind: beacon.EventClick, At: 110 * time.Millisecond},
				},
			}
			exposure := time.Duration(150+10*(i%8)) * time.Millisecond
			rctx, rcancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer rcancel()
			err := cl.Report(rctx, p, exposure)
			outcomes[i] = outcome{nonce: p.Nonce, acked: err == nil}
		}(i)
	}

	// Mid-run, shard 0 "crashes": its server is torn down, the store
	// recovered from the WAL alone, and a fresh collector rebinds the
	// same address. The outage lasts long enough that commits hashing
	// to shard 0 are acked purely from the router's spill buffer.
	time.Sleep(250 * time.Millisecond)
	stop0()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	st0b, applied, err := store.RecoverWAL(walPath, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	spilledDuringOutage := r.pools[0].spillPending()
	t.Logf("chaos: shard 0 restarted with %d WAL entries recovered, %d commits spilled toward it during the outage",
		applied, spilledDuringOutage)
	wal2, err := store.OpenWAL(walPath, store.WALOptions{Policy: store.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	st0b.AttachWAL(wal2)
	serveShard(newColl(st0b), shard0Addr)

	wg.Wait()

	_, clientKills, _, _ := clientPlan.Stats()
	if clientKills == 0 {
		t.Fatal("chaos too gentle: no client connection was killed")
	}
	acked := 0
	for _, o := range outcomes {
		if o.acked {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("no beacon ever got through; chaos too violent to test the invariant")
	}

	// Drain the router: every commit it acknowledged must flush to its
	// shard — including the spill built up while shard 0 was dead.
	if left := r.Drain(15 * time.Second); left != 0 {
		t.Fatalf("router drain left %d acked commits undelivered (loss)", left)
	}
	var breakerOpens, replays int64
	for _, p := range r.pools {
		breakerOpens += p.tel.breakerOpens.Load()
		replays += p.tel.replays.Load()
	}
	t.Logf("chaos: %d/%d acked, clientKills=%d replays=%d breakerOpens=%d",
		acked, fleet, clientKills, replays, breakerOpens)
	if breakerOpens == 0 {
		t.Error("shard 0's trunk breakers never opened; the outage went unnoticed")
	}

	// Zero loss, exactly once, on the union of the surviving stores —
	// and every record on exactly the shard its nonce hashes to.
	finals := []*store.Store{st0b, st1}
	byNonce := map[string]int{}
	for i, st := range finals {
		st.ForEach(func(im store.Impression) bool {
			if im.Nonce == "" {
				t.Errorf("shard %d: impression %d has no nonce", i, im.ID)
				return true
			}
			byNonce[im.Nonce]++
			if want := shardmerge.ShardFor(im.Nonce, len(finals)); want != i {
				t.Errorf("nonce %q on shard %d, hash owns shard %d", im.Nonce, i, want)
			}
			return true
		})
	}
	for i, o := range outcomes {
		n := byNonce[o.nonce]
		if o.acked && n == 0 {
			t.Errorf("beacon %d acked but absent from every shard (zero-loss violated)", i)
		}
		if n > 1 {
			t.Errorf("nonce of beacon %d appears %d times across shards (replay double-counted)", i, n)
		}
	}

	// Audit equality through the merge layer: one unmodified streaming
	// engine per surviving shard, exports merged in shard order, must
	// report exactly what the batch FullAudit computes over the
	// combined store.
	combined := store.New()
	for _, st := range finals {
		var ierr error
		st.ForEach(func(im store.Impression) bool {
			_, ierr = combined.Insert(im)
			return ierr == nil
		})
		if ierr != nil {
			t.Fatal(ierr)
		}
	}
	meta := audit.UniverseMetadata{Universe: pubs}
	inputs := auditInputsFromStore(combined)
	aud, err := audit.New(combined, meta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := aud.FullAuditSerial(inputs)
	if err != nil {
		t.Fatal(err)
	}
	exports := make([]*streamaudit.Export, len(finals))
	for i, st := range finals {
		eng, err := streamaudit.New(streamaudit.Config{Store: st, Meta: meta})
		if err != nil {
			t.Fatal(err)
		}
		eng.Drain()
		exports[i] = eng.Export()
	}
	merged, err := streamaudit.NewStatic(streamaudit.StaticConfig{Meta: meta}, shardmerge.Merge(exports))
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.Report(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("merged shard audit diverges from batch FullAudit over the combined store")
	}
}

// auditInputsFromStore synthesizes per-campaign vendor reports from the
// store itself, the way the simtest oracle builds them from its model —
// the audit then cross-checks the store against a report that agrees
// with it by construction, so merged-vs-batch equality is the only
// thing under test.
func auditInputsFromStore(st *store.Store) []audit.CampaignInput {
	type pubCount struct {
		impressions int64
		clicks      int64
	}
	perCampaign := map[string]map[string]*pubCount{}
	st.ForEach(func(im store.Impression) bool {
		pubs := perCampaign[im.CampaignID]
		if pubs == nil {
			pubs = map[string]*pubCount{}
			perCampaign[im.CampaignID] = pubs
		}
		pc := pubs[im.Publisher]
		if pc == nil {
			pc = &pubCount{}
			pubs[im.Publisher] = pc
		}
		pc.impressions++
		pc.clicks += int64(im.Clicks)
		return true
	})
	var ids []string
	for id := range perCampaign {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var inputs []audit.CampaignInput
	for _, id := range ids {
		rep := &adnet.VendorReport{CampaignID: id}
		var total int64
		for pub, pc := range perCampaign[id] {
			rep.Rows = append(rep.Rows, adnet.ReportRow{
				Publisher:   pub,
				Impressions: pc.impressions,
				Clicks:      pc.clicks,
			})
			total += pc.impressions
		}
		sort.Slice(rep.Rows, func(a, b int) bool {
			if rep.Rows[a].Impressions != rep.Rows[b].Impressions {
				return rep.Rows[a].Impressions > rep.Rows[b].Impressions
			}
			return rep.Rows[a].Publisher < rep.Rows[b].Publisher
		})
		rep.TotalImpressionsCharged = total
		rep.ContextualImpressions = total * 2 / 3
		rep.RefundedImpressions = total / 10
		inputs = append(inputs, audit.CampaignInput{ID: id, Report: rep})
	}
	return inputs
}
