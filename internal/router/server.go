package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"adaudit/internal/shardmerge"
	"adaudit/internal/streamaudit"
)

// serverOptions collects the tunables NewServer accepts as options.
type serverOptions struct {
	drainGrace time.Duration
	listener   net.Listener
	merge      *shardmerge.Client
	staticCfg  streamaudit.StaticConfig
}

// ServerOption customises a Server.
type ServerOption func(*serverOptions)

// WithDrainGrace bounds how long Serve waits on shutdown for in-flight
// sessions to commit and for every shard's spill buffer to empty
// (default 5 s).
func WithDrainGrace(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.drainGrace = d }
}

// WithListener serves on ln instead of opening a fresh TCP listener
// (addr is then ignored) — the hook the chaos tests use to put a
// fault-injected accept path under the router's client leg.
func WithListener(ln net.Listener) ServerOption {
	return func(o *serverOptions) { o.listener = ln }
}

// WithLiveMerge adds the merged live-audit API: GET /api/live/export
// serves the shard-merged streamaudit export, and /api/live/summary +
// /api/live/audit/{campaign} answer from a query engine built over that
// merged state — the same endpoints a single collector serves, now
// spanning the whole sharded dataset. Each request fetches every
// shard's export fresh (client's Shards must list the shard HTTP bases
// in shard order); cfg supplies the metadata the static engine folds
// against, which must agree with the shards' own.
func WithLiveMerge(client *shardmerge.Client, cfg streamaudit.StaticConfig) ServerOption {
	return func(o *serverOptions) {
		o.merge = client
		o.staticCfg = cfg
	}
}

// Server runs a Router behind an HTTP listener with the standard
// operational sidecar: the beacon endpoint, the gateway trunk relay
// endpoint, GET /healthz (per-shard trunk health, ok → degraded →
// unhealthy), GET /metrics (Prometheus text), GET /api/metrics (JSON),
// and optionally the merged /api/live/* views. It owns listener
// lifecycle and graceful drain, so cmd/adrouter and the tests share one
// serving path.
type Server struct {
	rt      *Router
	httpSrv *http.Server
	ln      net.Listener
	opts    serverOptions
	start   time.Time
}

// NewServer wraps r in a Server listening on addr (host:port; port 0
// picks a free port).
func NewServer(r *Router, addr string, opts ...ServerOption) (*Server, error) {
	o := serverOptions{drainGrace: 5 * time.Second}
	for _, opt := range opts {
		opt(&o)
	}
	ln := o.listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("router: listening on %s: %w", addr, err)
		}
	}
	s := &Server{rt: r, ln: ln, opts: o, start: time.Now()}
	mux := http.NewServeMux()
	mux.Handle("/beacon", r)
	mux.HandleFunc("/trunk", r.ServeTrunk)
	mux.HandleFunc("/healthz", s.serveHealthz)
	if reg := r.Telemetry(); reg != nil {
		reg.GaugeFunc("adaudit_router_uptime_seconds",
			"Time since the router server started.", nil,
			func() float64 { return time.Since(s.start).Seconds() })
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/api/metrics", reg.JSONHandler())
	}
	if o.merge != nil {
		mux.HandleFunc("/api/live/export", s.serveMergedExport)
		mux.HandleFunc("/api/live/summary", s.serveMergedSummary)
		mux.HandleFunc("/api/live/audit/", s.serveMergedAudit)
	}
	s.httpSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// serveHealthz reports the sharded topology's degradation ladder: "ok"
// with every trunk of every shard up, "degraded" while every shard is
// still reachable on at least one trunk, "unhealthy" (503) when some
// shard has no healthy trunk — that shard's slice of the keyspace is
// spilling, and unlike a gateway's collector outage, no amount of
// re-homing can move it, because ownership is the hash.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := s.rt.Health()
	w.Header().Set("Content-Type", "application/json")
	if st.Status == "unhealthy" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// serveMergedExport serves the union of every shard's streamaudit
// export, merged in shard order.
func (s *Server) serveMergedExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	exp, err := s.opts.merge.FetchMerged(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, exp)
}

// mergedEngine fetches every shard and builds a query engine over the
// merged state.
func (s *Server) mergedEngine(ctx context.Context) (*streamaudit.Engine, error) {
	exp, err := s.opts.merge.FetchMerged(ctx)
	if err != nil {
		return nil, err
	}
	return streamaudit.NewStatic(s.opts.staticCfg, exp)
}

func (s *Server) serveMergedSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	eng, err := s.mergedEngine(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, eng.Summaries())
}

func (s *Server) serveMergedAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/live/audit/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "missing campaign id", http.StatusBadRequest)
		return
	}
	eng, err := s.mergedEngine(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	la, ok, err := eng.Audit(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	writeJSON(w, la)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// BeaconURL returns the ws:// URL beacon clients should dial.
func (s *Server) BeaconURL() string {
	return fmt.Sprintf("ws://%s/beacon", s.ln.Addr().String())
}

// TrunkURL returns the ws:// URL gateways should trunk into.
func (s *Server) TrunkURL() string {
	return fmt.Sprintf("ws://%s/trunk", s.ln.Addr().String())
}

// Serve blocks serving requests until ctx is cancelled, then drains:
// admission flips to shedding, open sessions are closed with the
// resumable 1012 close code and a Retry-After hint, and every shard's
// spill buffer is given until the drain grace to flush acked commits
// into its shard before the trunk pools are torn down.
func (s *Server) Serve(ctx context.Context) error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.httpSrv.Serve(s.ln)
	}()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.httpSrv.Shutdown(shutdownCtx)
		left := s.rt.Drain(s.opts.drainGrace)
		if left > 0 {
			s.rt.log.Warn("router: drain deadline hit with unflushed commits", "pending", left)
		}
		_ = s.httpSrv.Close()
		<-errCh
		s.rt.Close()
		return nil
	case err := <-errCh:
		s.rt.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("router: serving: %w", err)
	}
}

// Close tears the server down immediately.
func (s *Server) Close() error {
	err := s.httpSrv.Close()
	s.rt.Close()
	return err
}
