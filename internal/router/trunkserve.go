package router

import (
	"net/http"
	"strconv"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/shardmerge"
	"adaudit/internal/trunk"
	"adaudit/internal/wsproto"
)

// relayOpen is the continuity record for one gateway stream: the
// router stream it was re-homed onto and the shard that owns it, fixed
// at Open time by the payload nonce. The record is keyed by
// gatewayID/stream at the router level — not per connection — because a
// gateway round-robins frames over its trunk pool, so a stream's Open
// and Event may arrive on different connections. Commit removes the
// record; the two-generation cache in Router bounds leftovers from
// gateways that die without committing.
type relayOpen struct {
	stream uint64
	shard  int
}

// relayOpenLimit is the per-generation size of the Open continuity
// cache.
const relayOpenLimit = 1 << 16

// relayRecordOpen remembers the route fixed for one origin stream.
func (r *Router) relayRecordOpen(key string, ro relayOpen) {
	r.opensMu.Lock()
	if len(r.opensCur) >= relayOpenLimit {
		r.opensPrev = r.opensCur
		r.opensCur = make(map[string]relayOpen, relayOpenLimit/4)
	}
	r.opensCur[key] = ro
	r.opensMu.Unlock()
}

// relayLookupOpen returns the recorded route for an origin stream.
func (r *Router) relayLookupOpen(key string) (relayOpen, bool) {
	r.opensMu.Lock()
	defer r.opensMu.Unlock()
	if ro, ok := r.opensCur[key]; ok {
		return ro, true
	}
	ro, ok := r.opensPrev[key]
	return ro, ok
}

// relayTakeOpen removes and returns the recorded route — called by the
// Commit that finishes the stream.
func (r *Router) relayTakeOpen(key string) (relayOpen, bool) {
	r.opensMu.Lock()
	defer r.opensMu.Unlock()
	if ro, ok := r.opensCur[key]; ok {
		delete(r.opensCur, key)
		return ro, true
	}
	if ro, ok := r.opensPrev[key]; ok {
		delete(r.opensPrev, key)
		return ro, true
	}
	return relayOpen{}, false
}

// ServeTrunk terminates one gateway trunk connection on the router: the
// gateway speaks the ordinary trunk protocol, unaware that its
// "collector" is a router fanning its sessions out across shards. Every
// relayed commit is re-streamed under a router-owned stream ID onto the
// shard its nonce hashes to, held in that shard's spill buffer until
// the shard acks, and the ack is translated back to the gateway's
// original stream ID — so the gateway's own spill discipline covers the
// full gateway → router → shard path with no new protocol.
//
// Replays are layered: a gateway re-sending an unacked commit while the
// router still holds it in spill is folded onto the same router stream
// (relayByOrigin); a replay arriving after the router already resolved
// the stream gets a fresh router stream and is absorbed by the shard
// collector's nonce dedup — the same backstop a collector restart
// relies on in the single-collector topology.
func (r *Router) ServeTrunk(w http.ResponseWriter, req *http.Request) {
	if tok := r.cfg.TrunkToken; tok != "" && req.Header.Get(trunk.TokenHeader) != tok {
		http.Error(w, "bad trunk token", http.StatusForbidden)
		return
	}
	up := wsproto.Upgrader{MaxMessageSize: trunkMaxMessage}
	conn, err := up.Upgrade(w, req)
	if err != nil {
		r.log.Debug("router: trunk handshake rejected", "err", err, "remote", req.RemoteAddr)
		return
	}
	if r.draining.Load() {
		_ = conn.Close(wsproto.CloseGoingAway, "router shutting down")
		return
	}
	conn.ReuseReadBuffer()
	// Relayed trunks ride the same session tracking as beacon
	// connections, so Drain tears them down too: the gateway spills
	// unacked commits and replays them against another router.
	r.trackSession(conn)
	defer r.untrackSession(conn)
	r.tel.relayTrunks.Add(1)
	defer r.tel.relayTrunks.Add(-1)
	defer conn.Close(wsproto.CloseNormal, "")

	_ = conn.SetReadDeadline(time.Now().Add(r.cfg.HandshakeTimeout))
	gatewayID := ""
	for {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			if gatewayID != "" {
				r.log.Debug("router: relay trunk closed", "gateway", gatewayID, "err", err)
			}
			return
		}
		if op != wsproto.OpBinary {
			_ = conn.Close(wsproto.ClosePolicyViolation, "trunk frames must be binary")
			return
		}
		frames, err := trunk.DecodeBatch(msg)
		if err != nil {
			r.log.Warn("router: malformed relay trunk batch", "gateway", gatewayID, "err", err)
			_ = conn.Close(wsproto.ClosePolicyViolation, "malformed trunk batch")
			return
		}
		var reply []byte
		for _, f := range frames {
			r.tel.relayFrames.With(f.Type.String()).Inc()
			switch f.Type {
			case trunk.Hello:
				if gatewayID == "" {
					gatewayID = f.GatewayID
					_ = conn.SetReadDeadline(time.Time{})
					r.log.Info("router: relay trunk established",
						"gateway", gatewayID, "version", f.Version, "remote", req.RemoteAddr)
				}
			case trunk.Open:
				r.relayOpenFrame(gatewayID, f)
			case trunk.Event:
				r.relayEventFrame(gatewayID, f)
			case trunk.Commit:
				reply = r.relayCommitFrame(conn, gatewayID, f, reply)
			}
		}
		if gatewayID == "" {
			_ = conn.Close(wsproto.ClosePolicyViolation, "trunk batch before hello")
			return
		}
		if len(reply) > 0 {
			if err := conn.WriteMessage(wsproto.OpBinary, reply); err != nil {
				return
			}
		}
	}
}

// relayOpenFrame fixes a relayed stream's shard from its payload nonce
// and forwards the advisory Open. Droppable end to end: the accounting
// state arrives self-contained in the Commit.
func (r *Router) relayOpenFrame(gatewayID string, f trunk.Frame) {
	payload, err := beacon.Decode(f.Payload)
	if gatewayID == "" || err != nil || payload.Nonce == "" {
		// Not shardable without a nonce; the commit will mint one and
		// choose for itself.
		r.tel.relayDrops.Add(1)
		return
	}
	ro := relayOpen{
		stream: r.streamID.Add(1),
		shard:  shardmerge.ShardFor(payload.Nonce, len(r.pools)),
	}
	r.relayRecordOpen(gatewayID+"/"+strconv.FormatUint(f.Stream, 10), ro)
	f.Stream = ro.stream
	r.forwardAdvisory(ro.shard, f)
}

// relayEventFrame forwards an advisory Event along its Open's route;
// with no Open on record (router restarted mid-session) it is dropped.
func (r *Router) relayEventFrame(gatewayID string, f trunk.Frame) {
	ro, ok := relayOpen{}, false
	if gatewayID != "" {
		ro, ok = r.relayLookupOpen(gatewayID + "/" + strconv.FormatUint(f.Stream, 10))
	}
	if !ok {
		r.tel.relayDrops.Add(1)
		return
	}
	f.Stream = ro.stream
	r.forwardAdvisory(ro.shard, f)
}

// forwardAdvisory best-effort enqueues one re-streamed advisory frame
// onto a shard's healthy trunk.
func (r *Router) forwardAdvisory(shard int, f trunk.Frame) {
	p := r.pools[shard]
	t := p.pickTrunk()
	if t == nil || !t.enqueue(trunk.AppendFrame(nil, f)) {
		p.tel.queueDrops.Add(1)
	}
}

// relayCommitFrame re-streams one gateway commit onto its owning shard
// and registers the ack return path. Undecodable commits are rejected
// back to the gateway immediately; everything else is answered
// asynchronously when the shard acks.
func (r *Router) relayCommitFrame(conn *wsproto.Conn, gatewayID string,
	f trunk.Frame, reply []byte) []byte {
	payload, err := beacon.Decode(f.Payload)
	if err != nil {
		return trunk.AppendFrame(reply, trunk.Frame{
			Type: trunk.Reject, Stream: f.Stream, Reason: "decode: " + err.Error(),
		})
	}
	if payload.Nonce == "" {
		payload.Nonce = beacon.NewNonce()
		f.Payload = payload.Encode()
	}
	shard := shardmerge.ShardFor(payload.Nonce, len(r.pools))
	originKey := gatewayID + "/" + strconv.FormatUint(f.Stream, 10)
	ro, hadOpen := r.relayTakeOpen(originKey)

	r.relayMu.Lock()
	rs, replayed := r.relayByOrigin[originKey]
	if replayed {
		// The gateway re-sent a commit the router still holds: fold it
		// onto the existing router stream and re-point the return path
		// at the connection the replay arrived on.
		e := r.relays[rs]
		e.origin = conn
		shard = e.shard
	} else {
		if hadOpen {
			rs = ro.stream // shard sees Open and Commit on one stream
		} else {
			rs = r.streamID.Add(1)
		}
		r.relays[rs] = &relayEntry{
			origin: conn, originStream: f.Stream, originKey: originKey, shard: shard,
		}
		r.relayByOrigin[originKey] = rs
	}
	r.relayMu.Unlock()

	f.Stream = rs
	frame := trunk.AppendFrame(nil, f)
	if replayed {
		r.pools[shard].respillCommit(rs, frame)
	} else {
		r.tel.commits.Add(1)
		r.pools[shard].spillCommit(rs, frame)
	}
	return reply
}

// relayResolve completes one relayed stream: the shard acked (ok) or
// rejected it, so the verdict is translated back to the origin
// gateway's stream and the mappings are dropped. Streams with no relay
// entry (router-terminated beacon sessions) are a no-op. A failed write
// back to the gateway is not retried: the gateway's ack timeout replays
// the commit, and the shard's nonce dedup turns that replay into a
// fresh ack.
func (r *Router) relayResolve(stream uint64, ok bool, reason string) {
	r.relayMu.Lock()
	e, found := r.relays[stream]
	if found {
		delete(r.relays, stream)
		delete(r.relayByOrigin, e.originKey)
	}
	r.relayMu.Unlock()
	if !found {
		return
	}
	reply := trunk.Frame{Type: trunk.Ack, Stream: e.originStream}
	if !ok {
		reply = trunk.Frame{Type: trunk.Reject, Stream: e.originStream, Reason: reason}
	}
	// wsproto serialises writers, so this ack can fan back from a shard
	// pool's reader goroutine while ServeTrunk writes its own replies.
	_ = e.origin.WriteMessage(wsproto.OpBinary, trunk.AppendFrame(nil, reply))
}
