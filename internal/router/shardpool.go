package router

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"adaudit/internal/trunk"
	"adaudit/internal/wsproto"
)

// trunkMaxMessage mirrors the collector's trunk batch bound.
const trunkMaxMessage = 1 << 20

// trunkDialTimeout bounds one shard trunk connection attempt.
const trunkDialTimeout = 5 * time.Second

// shardPool is one shard's side of the router: a small pool of
// persistent trunk connections to that shard's collector, plus the
// spill buffer holding every commit hashed onto the shard until it
// durably acks. Pools are independent — one shard's outage spills only
// its own slice of the keyspace while the others keep flowing — and
// spill entries never migrate between pools, because shard ownership is
// the hash of the session key, not trunk availability.
type shardPool struct {
	r   *Router
	id  int
	url string
	tel shardTelemetry

	trunks []*trunkConn
	// gen counts trunk topology changes within this pool; a spill entry
	// sent under an older generation may have died with its trunk.
	gen atomic.Uint64
	// rr round-robins forwarders across the pool's healthy trunks.
	rr atomic.Uint64

	spillMu    sync.Mutex
	spill      map[uint64]*spillEntry
	replayWake chan struct{}
}

// spillEntry is one unacknowledged commit.
type spillEntry struct {
	frame []byte // encoded Commit frame, length-prefixed
	// sentGen is the pool generation at the last send (0 = never sent);
	// sentAt the send time. Both are owned by the pool's replay loop.
	sentGen  uint64
	sentAt   time.Time
	enqueued time.Time // first spill time, for the forward histogram
}

func newShardPool(r *Router, id int, url string) *shardPool {
	p := &shardPool{
		r:          r,
		id:         id,
		url:        url,
		spill:      map[uint64]*spillEntry{},
		replayWake: make(chan struct{}, 1),
	}
	p.tel = newShardTelemetry(r.reg, p)
	for i := 0; i < r.cfg.TrunksPerShard; i++ {
		p.trunks = append(p.trunks, &trunkConn{p: p, idx: i})
	}
	return p
}

func (p *shardPool) spillPending() int {
	p.spillMu.Lock()
	defer p.spillMu.Unlock()
	return len(p.spill)
}

// spillCommit registers a commit for guaranteed delivery to this shard
// and nudges the replay loop to send it now.
func (p *shardPool) spillCommit(stream uint64, frame []byte) {
	p.tel.commits.Add(1)
	p.spillMu.Lock()
	p.spill[stream] = &spillEntry{frame: frame, enqueued: time.Now()}
	p.spillMu.Unlock()
	select {
	case p.replayWake <- struct{}{}:
	default:
	}
}

// respillCommit re-registers a relayed commit only if its stream is not
// already spilled — the fold for a gateway replay of a commit the
// router still holds. No counter moves: the commit was counted when
// first spilled, and if the stream just resolved in the races window
// the re-spilled frame is absorbed by the shard's dedup.
func (p *shardPool) respillCommit(stream uint64, frame []byte) {
	p.spillMu.Lock()
	if _, ok := p.spill[stream]; ok {
		p.spillMu.Unlock()
		return
	}
	p.spill[stream] = &spillEntry{frame: frame, enqueued: time.Now()}
	p.spillMu.Unlock()
	select {
	case p.replayWake <- struct{}{}:
	default:
	}
}

// ackStream removes an acked commit from the spill buffer and resolves
// any trunk-relay return path waiting on this stream.
func (p *shardPool) ackStream(stream uint64) {
	p.spillMu.Lock()
	e, ok := p.spill[stream]
	if ok {
		delete(p.spill, stream)
	}
	p.spillMu.Unlock()
	if ok {
		p.tel.acks.Add(1)
		p.tel.forward.ObserveDuration(time.Since(e.enqueued))
	}
	p.r.relayResolve(stream, true, "")
}

// rejectStream drops a commit the shard refused permanently.
func (p *shardPool) rejectStream(stream uint64, reason string) {
	p.spillMu.Lock()
	_, ok := p.spill[stream]
	if ok {
		delete(p.spill, stream)
	}
	p.spillMu.Unlock()
	if ok {
		p.tel.rejects.Add(1)
		p.r.log.Warn("router: shard rejected commit",
			"shard", p.id, "stream", stream, "reason", reason)
	}
	p.r.relayResolve(stream, false, reason)
}

// pickTrunk returns a healthy trunk of this pool, round-robin, or nil.
func (p *shardPool) pickTrunk() *trunkConn {
	n := len(p.trunks)
	start := int(p.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		t := p.trunks[(start+i)%n]
		if t.isHealthy() {
			return t
		}
	}
	return nil
}

// healthyTrunks counts established trunk connections to this shard.
func (p *shardPool) healthyTrunks() int {
	n := 0
	for _, t := range p.trunks {
		if t.isHealthy() {
			n++
		}
	}
	return n
}

// replayLoop is the pool's single commit sender: it pushes fresh spill
// entries immediately (woken by spillCommit and trunk attach) and
// re-sends entries whose trunk died or whose ack timed out. One sender
// per pool means a commit can never race its own retransmission onto
// two trunks; the shard's stream dedup and the collector nonce dedup
// absorb the replays a lost ack still forces.
func (p *shardPool) replayLoop() {
	r := p.r
	defer r.runnersWG.Done()
	tick := time.NewTicker(r.cfg.ReplayInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-p.replayWake:
		case <-tick.C:
		}
		p.replayPending()
	}
}

// replayPending sends every due spill entry over a healthy trunk of
// this pool: never sent, sent under an older pool generation, or
// unacked past AckTimeout.
func (p *shardPool) replayPending() {
	r := p.r
	t := p.pickTrunk()
	if t == nil {
		return
	}
	gen := p.gen.Load()
	now := time.Now()
	type item struct {
		stream uint64
		e      *spillEntry
	}
	var due []item
	p.spillMu.Lock()
	for s, e := range p.spill {
		if e.sentGen != gen || now.Sub(e.sentAt) > r.cfg.AckTimeout {
			due = append(due, item{s, e})
		}
	}
	p.spillMu.Unlock()
	if len(due) == 0 {
		return
	}
	sent := 0
	for _, it := range due {
		if !t.enqueue(it.e.frame) {
			break // trunk died mid-replay; the next wake retries
		}
		resend := it.e.sentGen != 0
		p.spillMu.Lock()
		if _, ok := p.spill[it.stream]; ok {
			it.e.sentGen = gen
			it.e.sentAt = now
		}
		p.spillMu.Unlock()
		if resend {
			p.tel.replays.Add(1)
		}
		sent++
	}
	if sent > 0 {
		t.flush()
	}
}

// trunkConn is one slot in a shard's trunk pool: a WebSocket to the
// shard collector's /trunk endpoint carrying batched frames for every
// session hashed onto that shard. Each slot runs its own dial/read
// lifecycle with a circuit breaker, so a dead shard costs bounded
// probing, not a dial storm.
type trunkConn struct {
	p   *shardPool
	idx int

	mu sync.Mutex
	// conn is the live connection (nil while down); buf the pending
	// batch, firstAppend when its oldest frame was buffered.
	conn        *wsproto.Conn
	buf         []byte
	firstAppend time.Time
	healthy     bool
	// fails counts consecutive dial failures for the breaker; reset on
	// a successful dial.
	fails int
}

func (t *trunkConn) isHealthy() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.healthy
}

// run is the trunk slot's lifecycle loop: breaker-gated dial, hello,
// then reading acks until the connection dies.
func (t *trunkConn) run() {
	r := t.p.r
	defer r.runnersWG.Done()
	for {
		select {
		case <-r.stopCh:
			return
		default:
		}
		if t.fails >= r.cfg.BreakerThreshold {
			// Breaker open: wait out the cooldown, then the next dial is
			// the half-open probe.
			if !sleepOrStop(r.stopCh, r.cfg.BreakerCooldown) {
				return
			}
		} else if t.fails > 0 {
			if !sleepOrStop(r.stopCh, r.cfg.BreakerCooldown/4) {
				return
			}
		}
		conn, err := t.dial()
		if err != nil {
			t.fails++
			if t.fails == r.cfg.BreakerThreshold {
				t.p.tel.breakerOpens.Add(1)
				r.log.Warn("router: shard trunk breaker opened",
					"shard", t.p.id, "trunk", t.idx, "fails", t.fails, "err", err)
			}
			continue
		}
		t.fails = 0
		t.attach(conn)
		t.reader(conn)
		t.detach(conn)
	}
}

// sleepOrStop waits d unless stop closes first; reports whether the
// full wait elapsed.
func sleepOrStop(stop <-chan struct{}, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

// dial opens the shard trunk connection and performs the Hello
// exchange. The router speaks the same trunk protocol a gateway does:
// to its shards, the router is just a very large gateway.
func (t *trunkConn) dial() (*wsproto.Conn, error) {
	r := t.p.r
	d := r.cfg.Dialer
	d.MaxMessageSize = trunkMaxMessage
	hdr := http.Header{}
	for k, vs := range r.cfg.Dialer.Header {
		hdr[k] = vs
	}
	if r.cfg.TrunkToken != "" {
		hdr.Set(trunk.TokenHeader, r.cfg.TrunkToken)
	}
	d.Header = hdr
	ctx, cancel := context.WithTimeout(context.Background(), trunkDialTimeout)
	defer cancel()
	conn, _, err := d.Dial(ctx, t.p.url)
	if err != nil {
		return nil, err
	}
	conn.ReuseReadBuffer()
	hello := trunk.AppendFrame(nil, trunk.Frame{
		Type: trunk.Hello, Version: trunk.Version, GatewayID: r.cfg.RouterID,
	})
	if err := conn.WriteMessage(wsproto.OpBinary, hello); err != nil {
		_ = conn.NetConn().Close()
		return nil, err
	}
	return conn, nil
}

// attach publishes the fresh connection: the trunk becomes eligible for
// session traffic and the pool's replay loop is nudged to push spilled
// commits through it.
func (t *trunkConn) attach(conn *wsproto.Conn) {
	p := t.p
	t.mu.Lock()
	t.conn = conn
	t.buf = nil
	t.healthy = true
	t.mu.Unlock()
	p.tel.trunksHealthy.Add(1)
	p.gen.Add(1)
	select {
	case p.replayWake <- struct{}{}:
	default:
	}
	p.r.log.Info("router: shard trunk established",
		"shard", p.id, "trunk", t.idx, "collector", p.url)
}

// detach withdraws a dead connection. The generation bump makes the
// pool's replay loop re-send every commit whose ack may have died with
// this trunk, onto whichever of the shard's trunks is healthy.
func (t *trunkConn) detach(conn *wsproto.Conn) {
	p := t.p
	t.mu.Lock()
	wasHealthy := t.healthy
	t.conn = nil
	t.healthy = false
	t.buf = nil
	t.mu.Unlock()
	_ = conn.NetConn().Close()
	if wasHealthy {
		p.tel.trunksHealthy.Add(-1)
	}
	p.gen.Add(1)
	p.r.log.Warn("router: shard trunk lost", "shard", p.id, "trunk", t.idx)
}

// reader consumes shard replies (acks and rejects) and runs the trunk's
// keepalive until the connection dies. It also hosts the age-based
// batch flusher.
func (t *trunkConn) reader(conn *wsproto.Conn) {
	r := t.p.r
	stop := make(chan struct{})
	defer close(stop)

	renewDeadline := func() {
		if ka := r.cfg.KeepAliveInterval; ka > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(2 * ka))
		}
	}
	conn.SetPongHandler(func([]byte) { renewDeadline() })
	renewDeadline()
	if ka := r.cfg.KeepAliveInterval; ka > 0 {
		go func() {
			tick := time.NewTicker(ka)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
					err := conn.Ping(nil)
					_ = conn.SetWriteDeadline(time.Time{})
					if err != nil {
						_ = conn.NetConn().Close()
						return
					}
				}
			}
		}()
	}
	go func() {
		period := r.cfg.BatchAge / 2
		if period < 5*time.Millisecond {
			period = 5 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.flushAged()
			}
		}
	}()

	for {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		renewDeadline()
		if op != wsproto.OpBinary {
			continue
		}
		frames, err := trunk.DecodeBatch(msg)
		if err != nil {
			r.log.Warn("router: malformed shard trunk reply",
				"shard", t.p.id, "trunk", t.idx, "err", err)
			return
		}
		for _, f := range frames {
			switch f.Type {
			case trunk.Ack:
				t.p.ackStream(f.Stream)
			case trunk.Reject:
				t.p.rejectStream(f.Stream, f.Reason)
			}
		}
	}
}

// enqueue buffers one encoded frame onto the trunk's pending batch,
// flushing when the size threshold is reached. Reports false when the
// trunk is down (the caller re-homes within the pool or drops).
func (t *trunkConn) enqueue(frame []byte) bool {
	r := t.p.r
	t.mu.Lock()
	if !t.healthy || t.conn == nil {
		t.mu.Unlock()
		return false
	}
	if len(t.buf) == 0 {
		t.firstAppend = time.Now()
	}
	t.buf = append(t.buf, frame...)
	var out []byte
	var conn *wsproto.Conn
	if len(t.buf) >= r.cfg.BatchBytes {
		out, t.buf = t.buf, nil
		conn = t.conn
	}
	t.mu.Unlock()
	if out != nil {
		t.write(conn, out)
	}
	return true
}

// flush forces the pending batch out now.
func (t *trunkConn) flush() {
	t.mu.Lock()
	out := t.buf
	conn := t.conn
	t.buf = nil
	t.mu.Unlock()
	if len(out) > 0 && conn != nil {
		t.write(conn, out)
	}
}

// flushAged flushes the batch when its oldest frame has waited past
// BatchAge.
func (t *trunkConn) flushAged() {
	t.mu.Lock()
	var out []byte
	var conn *wsproto.Conn
	if len(t.buf) > 0 && time.Since(t.firstAppend) >= t.p.r.cfg.BatchAge {
		out, t.buf = t.buf, nil
		conn = t.conn
	}
	t.mu.Unlock()
	if len(out) > 0 && conn != nil {
		t.write(conn, out)
	}
}

// write sends one batch message. On failure the transport is closed so
// the reader notices and the slot recycles; the frames in the batch are
// either advisory (droppable) or commits the pool's replay loop will
// re-send.
func (t *trunkConn) write(conn *wsproto.Conn, batch []byte) {
	t.p.tel.trunkBatches.Add(1)
	t.p.tel.batchBytes.Observe(float64(len(batch)))
	if err := conn.WriteMessage(wsproto.OpBinary, batch); err != nil {
		_ = conn.NetConn().Close()
	}
}

// closeConn tears down the live connection (shutdown path).
func (t *trunkConn) closeConn() {
	t.mu.Lock()
	conn := t.conn
	t.mu.Unlock()
	if conn != nil {
		_ = conn.NetConn().Close()
	}
}

// sessionQueue is a bounded frame queue between one session's read loop
// and its forwarder, with watermark hysteresis: pushes stall at the
// high watermark and resume only once the forwarder has drained the
// queue to the low watermark, so a slow shard throttles the client's
// TCP window instead of growing router memory.
type sessionQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	frames  [][]byte
	high    int
	low     int
	stalled bool
	closed  bool
}

func newSessionQueue(high, low int) *sessionQueue {
	q := &sessionQueue{high: high, low: low}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a frame, blocking while the queue is over its high
// watermark. Reports false when the queue closed while waiting.
func (q *sessionQueue) push(frame []byte) bool {
	q.mu.Lock()
	if len(q.frames) >= q.high {
		q.stalled = true
	}
	for q.stalled && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.frames = append(q.frames, frame)
	q.mu.Unlock()
	q.cond.Broadcast()
	return true
}

// pop removes the oldest frame, blocking until one is available or the
// queue is closed and empty (ok == false). A closed queue still drains.
func (q *sessionQueue) pop() ([]byte, bool) {
	q.mu.Lock()
	for len(q.frames) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.frames) == 0 {
		q.mu.Unlock()
		return nil, false
	}
	f := q.frames[0]
	q.frames = q.frames[1:]
	if q.stalled && len(q.frames) <= q.low {
		q.stalled = false
	}
	q.mu.Unlock()
	q.cond.Broadcast()
	return f, true
}

// close wakes every waiter; pending frames remain poppable.
func (q *sessionQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
