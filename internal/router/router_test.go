package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/beacon"
	"adaudit/internal/collector"
	"adaudit/internal/gateway"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/shardmerge"
	"adaudit/internal/store"
	"adaudit/internal/streamaudit"
	"adaudit/internal/wsproto"
)

const testTrunkToken = "trunk-secret"

// shardFixture is n live collector shards for a router to front.
type shardFixture struct {
	colls  []*collector.Collector
	stores []*store.Store
	srvs   []*collector.Server
	stops  []func()
}

// startShards boots n collectors, each with its own store, trunk token
// and server. mut customises each shard's collector config; srvOpts
// supplies per-shard server options (e.g. a live audit engine).
func startShards(t *testing.T, n int, mut func(i int, cfg *collector.Config),
	srvOpts func(i int, c *collector.Collector, st *store.Store) []collector.ServerOption) *shardFixture {
	t.Helper()
	f := &shardFixture{}
	for i := 0; i < n; i++ {
		st := store.New()
		cfg := collector.Config{
			Store:             st,
			Anonymizer:        ipmeta.NewAnonymizer([]byte("rt-test")),
			TrunkToken:        testTrunkToken,
			KeepAliveInterval: 50 * time.Millisecond,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		c, err := collector.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var opts []collector.ServerOption
		if srvOpts != nil {
			opts = srvOpts(i, c, st)
		}
		srv, err := collector.NewServer(c, "127.0.0.1:0", opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(ctx)
		}()
		stopped := false
		stop := func() {
			if stopped {
				return
			}
			stopped = true
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("shard collector server did not stop")
			}
		}
		t.Cleanup(stop)
		f.colls = append(f.colls, c)
		f.stores = append(f.stores, st)
		f.srvs = append(f.srvs, srv)
		f.stops = append(f.stops, stop)
	}
	return f
}

func (f *shardFixture) trunkURLs() []string {
	urls := make([]string, len(f.srvs))
	for i, s := range f.srvs {
		urls[i] = fmt.Sprintf("ws://%s/trunk", s.Addr())
	}
	return urls
}

func (f *shardFixture) baseURLs() []string {
	urls := make([]string, len(f.srvs))
	for i, s := range f.srvs {
		urls[i] = fmt.Sprintf("http://%s", s.Addr())
	}
	return urls
}

// totalLen sums the shard stores.
func (f *shardFixture) totalLen() int {
	n := 0
	for _, st := range f.stores {
		n += st.Len()
	}
	return n
}

// assertPlacement checks every stored impression sits on the shard its
// nonce hashes to — the router's core routing invariant.
func (f *shardFixture) assertPlacement(t *testing.T) {
	t.Helper()
	for i, st := range f.stores {
		st.ForEach(func(im store.Impression) bool {
			if im.Nonce == "" {
				t.Errorf("shard %d: impression %d stored without nonce", i, im.ID)
				return true
			}
			if want := shardmerge.ShardFor(im.Nonce, len(f.stores)); want != i {
				t.Errorf("nonce %q on shard %d, hash owns shard %d", im.Nonce, i, want)
			}
			return true
		})
	}
}

// fastRouterConfig returns a router Config tuned for test time scales.
func fastRouterConfig(shardURLs []string) Config {
	return Config{
		Shards:            shardURLs,
		TrunkToken:        testTrunkToken,
		RouterID:          "rt-test",
		KeepAliveInterval: 50 * time.Millisecond,
		BatchAge:          10 * time.Millisecond,
		AckTimeout:        300 * time.Millisecond,
		ReplayInterval:    50 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerCooldown:   50 * time.Millisecond,
		RetryAfterHint:    2 * time.Second,
	}
}

// startRouter builds and serves a router; the cleanup closes it.
func startRouter(t *testing.T, cfg Config, opts ...ServerOption) (*Router, *Server) {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]ServerOption{WithDrainGrace(time.Second)}, opts...)
	srv, err := NewServer(r, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("router server did not stop")
		}
	})
	return r, srv
}

// allTrunksUp reports whether every shard pool has its full trunk
// complement established.
func allTrunksUp(r *Router) bool {
	for _, p := range r.pools {
		if p.healthyTrunks() != len(p.trunks) {
			return false
		}
	}
	return true
}

func waitFor(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testPayload(i int) beacon.Payload {
	return beacon.Payload{
		CampaignID: "Router-001",
		CreativeID: fmt.Sprintf("cr-%d", i),
		PageURL:    fmt.Sprintf("http://pub%d.es/page", i%3),
		UserAgent:  "Mozilla/5.0 Chrome/49.0",
		Nonce:      beacon.NewNonce(),
	}
}

// TestRouterEndToEnd pushes sessions through the full sharded path —
// client → router → shard trunks → N collectors — and checks every
// impression lands on exactly the shard its nonce hashes to, with
// events and exposure intact, and that every pool's spill buffer drains
// on the acks.
func TestRouterEndToEnd(t *testing.T) {
	const shards, sessions = 3, 24
	f := startShards(t, shards, nil, nil)
	r, rsrv := startRouter(t, fastRouterConfig(f.trunkURLs()))
	waitFor(t, 5*time.Second, "all shard trunks to establish", func() bool { return allTrunksUp(r) })

	client := &beacon.Client{CollectorURL: rsrv.BeaconURL()}
	ctx := context.Background()
	payloads := make([]beacon.Payload, sessions)
	for i := range payloads {
		payloads[i] = testPayload(i)
		sess, err := client.Open(ctx, payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.SendEvent(beacon.Event{Kind: beacon.EventClick, At: 10 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 10*time.Second, "all impressions to reach their shards",
		func() bool { return f.totalLen() == sessions })
	f.assertPlacement(t)

	// The hash must actually spread the workload: with 24 random nonces
	// on 3 shards, an empty shard means the partition function is not
	// being consulted.
	for i, st := range f.stores {
		if st.Len() == 0 {
			t.Errorf("shard %d received no impressions out of %d", i, sessions)
		}
	}
	// Per-impression integrity survived the extra hop.
	seen := map[string]bool{}
	for _, st := range f.stores {
		st.ForEach(func(im store.Impression) bool {
			seen[im.Nonce] = true
			if im.Clicks != 1 {
				t.Errorf("nonce %q: clicks = %d, want 1", im.Nonce, im.Clicks)
			}
			return true
		})
	}
	for _, p := range payloads {
		if !seen[p.Nonce] {
			t.Errorf("nonce %q never landed on any shard", p.Nonce)
		}
	}
	waitFor(t, 5*time.Second, "spill buffers to drain", func() bool { return r.spillPending() == 0 })
	var acks uint64
	for _, p := range r.pools {
		acks += uint64(p.tel.acks.Load())
	}
	if acks != sessions {
		t.Fatalf("summed shard acks = %d, want %d", acks, sessions)
	}
	// Events are advisory and may flush a batch-age behind their commit,
	// so parity is eventual.
	waitFor(t, 5*time.Second, "advisory events to reach their shards", func() bool {
		var events int64
		for _, c := range f.colls {
			events += c.Metrics.Events.Load()
		}
		return events == sessions
	})
}

// TestRouterSynthesizesNonce: the nonce is both the replay key and the
// shard key, so a nonce-less payload gets one minted before routing.
func TestRouterSynthesizesNonce(t *testing.T) {
	f := startShards(t, 2, nil, nil)
	r, rsrv := startRouter(t, fastRouterConfig(f.trunkURLs()))
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return allTrunksUp(r) })

	client := &beacon.Client{CollectorURL: rsrv.BeaconURL()}
	p := testPayload(0)
	p.Nonce = ""
	if err := client.Report(context.Background(), p, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "impression to land", func() bool { return f.totalLen() == 1 })
	f.assertPlacement(t)
}

// TestRouterTrunkRelay fronts the router with a real gateway: the
// gateway trunks into /trunk believing the router is its collector, the
// router re-streams each commit onto the owning shard, and the shard's
// ack flows back so the gateway's spill drains. The full edge topology
// — client → gateway → router → shard — with zero protocol changes at
// either neighbor.
func TestRouterTrunkRelay(t *testing.T) {
	const shards, sessions = 2, 10
	f := startShards(t, shards, nil, nil)
	r, rsrv := startRouter(t, fastRouterConfig(f.trunkURLs()))
	waitFor(t, 5*time.Second, "shard trunks to establish", func() bool { return allTrunksUp(r) })

	g, err := gateway.New(gateway.Config{
		CollectorURL:      rsrv.TrunkURL(),
		TrunkToken:        testTrunkToken,
		GatewayID:         "gw-relay-test",
		KeepAliveInterval: 50 * time.Millisecond,
		BatchAge:          10 * time.Millisecond,
		AckTimeout:        300 * time.Millisecond,
		ReplayInterval:    50 * time.Millisecond,
		BreakerCooldown:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gsrv, err := gateway.NewServer(g, "127.0.0.1:0", gateway.WithDrainGrace(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	gctx, gcancel := context.WithCancel(context.Background())
	gdone := make(chan struct{})
	go func() {
		defer close(gdone)
		_ = gsrv.Serve(gctx)
	}()
	t.Cleanup(func() {
		gcancel()
		select {
		case <-gdone:
		case <-time.After(10 * time.Second):
			t.Fatal("gateway server did not stop")
		}
	})
	waitFor(t, 5*time.Second, "gateway trunks to reach the router", func() bool {
		return g.Health().TrunksHealthy == g.Health().TrunksTotal
	})
	if got := r.tel.relayTrunks.Load(); got < 1 {
		t.Fatalf("relay trunks gauge = %v, want >= 1", got)
	}

	client := &beacon.Client{CollectorURL: gsrv.BeaconURL()}
	ctx := context.Background()
	for i := 0; i < sessions; i++ {
		sess, err := client.Open(ctx, testPayload(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.SendEvent(beacon.Event{Kind: beacon.EventClick, At: 5 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 10*time.Second, "all relayed impressions to reach their shards",
		func() bool { return f.totalLen() == sessions })
	f.assertPlacement(t)
	// The relayed acks must travel the whole way back: shard → router
	// spill → gateway spill.
	waitFor(t, 5*time.Second, "router spill to drain", func() bool { return r.spillPending() == 0 })
	waitFor(t, 5*time.Second, "gateway spill to drain", func() bool { return g.Health().SpillPending == 0 })
	waitFor(t, 5*time.Second, "relayed advisory events to reach their shards", func() bool {
		var events int64
		for _, c := range f.colls {
			events += c.Metrics.Events.Load()
		}
		return events == sessions
	})
}

// TestRouterHealthLadder walks /healthz through the sharded degradation
// ladder: all trunks up → ok; one trunk of one shard down → degraded
// (200, the shard is still reachable); a whole shard unreachable →
// unhealthy (503), because that shard's keyspace slice has nowhere else
// to go.
func TestRouterHealthLadder(t *testing.T) {
	f := startShards(t, 2, nil, nil)
	cfg := fastRouterConfig(f.trunkURLs())
	cfg.TrunksPerShard = 2
	// A long cooldown keeps broken trunks down for the duration of the
	// middle rung instead of instantly redialing.
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = 30 * time.Second
	r, rsrv := startRouter(t, cfg)
	base := fmt.Sprintf("http://%s/healthz", rsrv.Addr())

	getHealth := func() (int, HealthStatus) {
		resp, err := http.Get(base)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	waitFor(t, 5*time.Second, "all trunks up", func() bool { return allTrunksUp(r) })
	if code, st := getHealth(); code != http.StatusOK || st.Status != "ok" || len(st.Shards) != 2 {
		t.Fatalf("healthz with all trunks = %d %+v, want 200 ok with 2 shards", code, st)
	}

	r.pools[0].trunks[0].closeConn()
	waitFor(t, 5*time.Second, "one trunk down", func() bool { return r.pools[0].healthyTrunks() == 1 })
	if code, st := getHealth(); code != http.StatusOK || st.Status != "degraded" {
		t.Fatalf("healthz with one trunk down = %d %+v, want 200 degraded", code, st)
	}

	// Take shard 0 away entirely: its slice of the keyspace is stuck.
	f.stops[0]()
	waitFor(t, 5*time.Second, "shard 0 trunks down", func() bool { return r.pools[0].healthyTrunks() == 0 })
	code, st := getHealth()
	if code != http.StatusServiceUnavailable || st.Status != "unhealthy" {
		t.Fatalf("healthz with a dead shard = %d %+v, want 503 unhealthy", code, st)
	}
	if st.Shards[0].TrunksHealthy != 0 || st.Shards[1].TrunksHealthy == 0 {
		t.Fatalf("per-shard health = %+v, want shard 0 dead and shard 1 alive", st.Shards)
	}
}

// TestRouterDrainHandsSessionsBack: Drain sheds new work, closes live
// sessions with the resumable 1012 code and a parseable retry-after
// reason, and flushes every shard's spill buffer before returning.
func TestRouterDrainHandsSessionsBack(t *testing.T) {
	f := startShards(t, 2, nil, nil)
	r, rsrv := startRouter(t, fastRouterConfig(f.trunkURLs()))
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return allTrunksUp(r) })

	ctx := context.Background()
	d := &wsproto.Dialer{}
	conn, _, err := d.Dial(ctx, rsrv.BeaconURL())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText(testPayload(2).Encode()); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText(beacon.EncodeEventUpdate(beacon.Event{Kind: beacon.EventClick, At: 5 * time.Millisecond})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "payload handshake to finish", func() bool { return r.tel.events.Load() == 1 })

	drained := make(chan int, 1)
	go func() { drained <- r.Drain(5 * time.Second) }()

	var ce *wsproto.CloseError
	for {
		_, _, err := conn.ReadMessage()
		if err != nil {
			if !errors.As(err, &ce) {
				t.Fatalf("drain surfaced %v, want a close frame", err)
			}
			break
		}
	}
	if ce.Code != wsproto.CloseServiceRestart {
		t.Fatalf("drain close code = %d, want %d", ce.Code, wsproto.CloseServiceRestart)
	}
	if !strings.Contains(ce.Reason, "retry-after=") {
		t.Fatalf("drain close reason = %q, want a retry-after hint", ce.Reason)
	}
	if left := <-drained; left != 0 {
		t.Fatalf("drain left %d commits unflushed", left)
	}
	waitFor(t, 5*time.Second, "drained commit to land", func() bool { return f.totalLen() == 1 })

	_, resp, err := d.Dial(ctx, rsrv.BeaconURL())
	if err == nil {
		t.Fatal("draining router admitted a session")
	}
	if resp == nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain shed response = %+v, want 503", resp)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed missing Retry-After header")
	}
}

// listenerAddr pins a free port without serving, for tests that need a
// guaranteed-dead shard address.
func listenerAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRouterShedsWhenSpillFull: SpillLimit counts across every shard's
// spill; at the cap admission flips to shedding rather than promising
// acks the router cannot keep.
func TestRouterShedsWhenSpillFull(t *testing.T) {
	cfg := fastRouterConfig([]string{"ws://" + listenerAddr(t) + "/trunk"})
	cfg.SpillLimit = 1
	r, rsrv := startRouter(t, cfg)

	client := &beacon.Client{CollectorURL: rsrv.BeaconURL()}
	if err := client.Report(context.Background(), testPayload(5), 10*time.Millisecond); err != nil {
		t.Fatalf("first session should be acked into the spill: %v", err)
	}
	waitFor(t, 2*time.Second, "commit to spill", func() bool { return r.spillPending() == 1 })
	d := &wsproto.Dialer{}
	_, resp, err := d.Dial(context.Background(), rsrv.BeaconURL())
	if err == nil {
		t.Fatal("router with a full spill admitted a session")
	}
	if resp == nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("spill shed response = %+v, want 503", resp)
	}
	if got := r.tel.sheds.With(ShedSpill).Load(); got != 1 {
		t.Fatalf("spill sheds = %v, want 1", got)
	}
}

// TestRouterMergedLiveAPI: shards run live streamaudit engines, the
// router server aggregates them — /api/live/export serves the
// shard-order merge and /api/live/summary answers over it, with counts
// matching the union of the shard stores.
func TestRouterMergedLiveAPI(t *testing.T) {
	const shards, sessions = 2, 12
	uni, err := publisher.NewUniverse(publisher.Config{Seed: 5, NumPublishers: 120})
	if err != nil {
		t.Fatal(err)
	}
	meta := audit.UniverseMetadata{Universe: uni}
	keywords := map[string][]string{}
	for _, c := range adnet.PaperCampaigns() {
		keywords[c.ID] = c.Keywords
	}
	f := startShards(t, shards, nil,
		func(i int, c *collector.Collector, st *store.Store) []collector.ServerOption {
			eng, err := streamaudit.New(streamaudit.Config{
				Store:    st,
				Meta:     meta,
				Keywords: keywords,
			})
			if err != nil {
				t.Fatal(err)
			}
			return []collector.ServerOption{collector.WithLiveAudit(eng)}
		})

	r, rsrv := startRouter(t, fastRouterConfig(f.trunkURLs()),
		WithLiveMerge(&shardmerge.Client{Shards: f.baseURLs()},
			streamaudit.StaticConfig{Meta: meta, Keywords: keywords}))
	waitFor(t, 5*time.Second, "trunks to establish", func() bool { return allTrunksUp(r) })

	// Real campaign IDs and universe publishers, so the live engines
	// fold metadata the same way a production shard would.
	campaigns := adnet.PaperCampaigns()
	client := &beacon.Client{CollectorURL: rsrv.BeaconURL()}
	ctx := context.Background()
	for i := 0; i < sessions; i++ {
		p := beacon.Payload{
			CampaignID: campaigns[i%len(campaigns)].ID,
			CreativeID: fmt.Sprintf("cr-%d", i),
			PageURL:    fmt.Sprintf("http://%s/page", uni.At(i%uni.Len()).Domain),
			UserAgent:  "Mozilla/5.0 Chrome/49.0",
			Nonce:      beacon.NewNonce(),
		}
		if err := client.Report(ctx, p, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "all impressions to land", func() bool { return f.totalLen() == sessions })
	f.assertPlacement(t)

	// The merged export must union exactly the shard stores.
	resp, err := http.Get(fmt.Sprintf("http://%s/api/live/export", rsrv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merged export status = %d, want 200", resp.StatusCode)
	}
	var exp streamaudit.Export
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	eng, err := streamaudit.NewStatic(streamaudit.StaticConfig{Meta: meta, Keywords: keywords}, &exp)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range eng.Summaries() {
		total += s.Impressions
	}
	if total != sessions {
		t.Fatalf("merged export impressions = %d, want %d", total, sessions)
	}

	// And the router's own summary endpoint answers over the same
	// merged state.
	resp2, err := http.Get(fmt.Sprintf("http://%s/api/live/summary", rsrv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("merged summary status = %d, want 200", resp2.StatusCode)
	}
	var sums []streamaudit.CampaignLive
	if err := json.NewDecoder(resp2.Body).Decode(&sums); err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, s := range sums {
		total += s.Impressions
	}
	if total != sessions {
		t.Fatalf("merged summary impressions = %d, want %d", total, sessions)
	}
}
