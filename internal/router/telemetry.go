package router

import (
	"strconv"

	"adaudit/internal/telemetry"
)

// routerTelemetry bundles the router-level instruments (no shard
// dimension). All fields are nil-safe.
type routerTelemetry struct {
	connections    *telemetry.Counter
	sessionsActive *telemetry.Gauge
	sheds          *telemetry.CounterVec
	events         *telemetry.Counter
	commits        *telemetry.Counter
	relayTrunks    *telemetry.Gauge
	relayFrames    *telemetry.CounterVec
	relayDrops     *telemetry.Counter
}

func newRouterTelemetry(reg *telemetry.Registry, r *Router) routerTelemetry {
	tel := routerTelemetry{
		connections: reg.Counter("adaudit_router_connections_total",
			"Beacon WebSocket connections accepted at the router.", nil),
		sessionsActive: reg.Gauge("adaudit_router_sessions_active",
			"Beacon sessions and gateway trunks currently open on this router.", nil),
		sheds: reg.CounterVec("adaudit_router_sheds_total",
			"Beacon requests refused at admission, by reason.", "reason"),
		events: reg.Counter("adaudit_router_events_total",
			"Interaction updates received from beacon sessions.", nil),
		commits: reg.Counter("adaudit_router_commits_total",
			"Session commits handed to a shard's spill/forward pipeline.", nil),
		relayTrunks: reg.Gauge("adaudit_router_relay_trunks_active",
			"Gateway trunk connections currently terminated on this router.", nil),
		relayFrames: reg.CounterVec("adaudit_router_relay_frames_total",
			"Trunk frames relayed from gateways onto shards, by frame type.", "type"),
		relayDrops: reg.Counter("adaudit_router_relay_drops_total",
			"Relayed advisory frames dropped for an unknown or shardless stream.", nil),
	}
	reg.GaugeFunc("adaudit_router_shards_total",
		"Configured collector shard count.", nil,
		func() float64 { return float64(len(r.cfg.Shards)) })
	reg.GaugeFunc("adaudit_router_spill_pending",
		"Commits awaiting shard acknowledgement, summed over all shards.", nil,
		func() float64 { return float64(r.spillPending()) })
	return tel
}

// shardTelemetry bundles one shard pool's instruments. Every series
// carries a shard_id label, so the same metric name fans out into one
// series per shard — a dashboard can spot a hot or dead shard without
// per-shard scrape targets.
type shardTelemetry struct {
	commits       *telemetry.Counter
	acks          *telemetry.Counter
	rejects       *telemetry.Counter
	replays       *telemetry.Counter
	queueDrops    *telemetry.Counter
	breakerOpens  *telemetry.Counter
	trunkBatches  *telemetry.Counter
	trunksHealthy *telemetry.Gauge
	forward       *telemetry.Histogram
	batchBytes    *telemetry.Histogram
}

func newShardTelemetry(reg *telemetry.Registry, p *shardPool) shardTelemetry {
	lbl := map[string]string{"shard_id": strconv.Itoa(p.id)}
	tel := shardTelemetry{
		commits: reg.Counter("adaudit_router_shard_commits_total",
			"Commits routed onto this shard.", lbl),
		acks: reg.Counter("adaudit_router_shard_acks_total",
			"Commits acknowledged by this shard.", lbl),
		rejects: reg.Counter("adaudit_router_shard_rejected_total",
			"Commits this shard rejected permanently.", lbl),
		replays: reg.Counter("adaudit_router_shard_replays_total",
			"Commit retransmissions after a trunk change or ack timeout.", lbl),
		queueDrops: reg.Counter("adaudit_router_shard_queue_drops_total",
			"Advisory frames dropped with no healthy trunk to this shard.", lbl),
		breakerOpens: reg.Counter("adaudit_router_shard_breaker_opens_total",
			"Trunk circuit-breaker openings toward this shard.", lbl),
		trunkBatches: reg.Counter("adaudit_router_shard_trunk_batches_total",
			"Batch messages written to this shard's trunks.", lbl),
		trunksHealthy: reg.Gauge("adaudit_router_shard_trunks_healthy",
			"Trunk connections currently established to this shard.", lbl),
		forward: reg.Histogram("adaudit_router_shard_forward_seconds",
			"Commit-to-shard-ack latency, spill time included.",
			telemetry.LatencyBuckets(), lbl),
		batchBytes: reg.Histogram("adaudit_router_shard_batch_bytes",
			"Trunk batch sizes at flush.",
			[]float64{256, 1024, 4096, 16384, 65536, 262144}, lbl),
	}
	reg.GaugeFunc("adaudit_router_shard_spill_pending",
		"Commits awaiting this shard's acknowledgement.", lbl,
		func() float64 { return float64(p.spillPending()) })
	return tel
}
