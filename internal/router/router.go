// Package router implements the multiplexing front tier of the
// horizontally sharded collector topology: one process that terminates
// beacon WebSockets (and whole gateway trunks) and consistent-hashes
// every session onto one of N collector shards by its session key — the
// beacon nonce — so each shard's store + WAL + streaming audit engine
// owns a stable, disjoint slice of the dataset. The shard-merge layer
// (internal/shardmerge) reunions those slices into the single-store
// audit the paper's methodology needs.
//
// Per shard the router keeps a small pool of persistent trunk
// connections (the internal/trunk frame protocol, unchanged from the
// gateway tier) with circuit breakers and batched writes; sessions
// multiplex over whichever trunk of their shard's pool is healthy.
// Commits are held in a per-shard spill buffer until the owning shard
// durably acks them — a shard restart re-homes nothing across shards
// (ownership is the hash, not the topology) but replays every
// outstanding commit to the restarted shard through its nonce/stream
// dedup, so acked-to-client never becomes loss and replays never
// double-count.
//
// The router also terminates gateway trunks on /trunk: an edge gateway
// (internal/gateway) can point its collector URL at the router, which
// re-streams each commit onto the owning shard and relays the shard's
// ack back to the gateway — the gateway's own spill discipline then
// covers the full path end to end.
package router

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaudit/internal/beacon"
	"adaudit/internal/shardmerge"
	"adaudit/internal/telemetry"
	"adaudit/internal/trace"
	"adaudit/internal/trunk"
	"adaudit/internal/wsproto"
)

// Shed reasons used for adaudit_router_sheds_total{reason=...}.
const (
	ShedDraining = "draining" // router is draining for shutdown
	ShedCapacity = "capacity" // MaxSessions cap reached
	ShedSpill    = "spill"    // spill buffer full: a shard outage outlasting memory
	ShedOrigin   = "origin"   // page origin not in the allowlist
)

// maxStageSkew clamps router-measured trace offsets against clients
// whose clocks disagree wildly with ours.
const maxStageSkew = 5 * time.Minute

// Config assembles a Router.
type Config struct {
	// Shards lists each collector shard's trunk endpoint
	// (ws://host:port/trunk) in shard order. The order is the identity
	// of the topology: the hash routes by index, and the shard-merge
	// layer must union exports in the same order for bit-stable float
	// aggregates. Required, at least one.
	Shards []string
	// TrunkToken is presented on shard trunk handshakes and required of
	// gateways trunking into /trunk (empty disables both checks).
	TrunkToken string
	// RouterID names this router on the trunk wire; shard-side commits
	// are deduped per (router, stream), so each instance needs a
	// distinct ID. Defaults to a random token.
	RouterID string
	// TrunksPerShard is the size of each shard's trunk pool (default 2).
	TrunksPerShard int
	// Dialer customises shard trunk dials (tests inject faults).
	Dialer wsproto.Dialer

	// AllowedOrigins restricts which page origins may open beacon
	// sessions; empty admits all.
	AllowedOrigins []string
	// MaxSessions caps concurrent beacon sessions; 0 disables.
	MaxSessions int
	// MaxMessageSize bounds beacon messages (default 16 KiB).
	MaxMessageSize int64
	// HandshakeTimeout bounds the wait for a session's initial payload
	// (default 10s).
	HandshakeTimeout time.Duration
	// KeepAliveInterval pings idle beacon sessions and trunks (default
	// 30s; negative disables).
	KeepAliveInterval time.Duration
	// MaxExposure caps a session's lifetime (default 30 minutes).
	MaxExposure time.Duration

	// BatchBytes flushes a trunk's pending batch at this size (default
	// 32 KiB); BatchAge when its oldest frame has waited this long
	// (default 50ms).
	BatchBytes int
	BatchAge   time.Duration

	// QueueHigh/QueueLow are the per-session forward-queue watermarks
	// (defaults 64/16): reads stall at high, resume at low — the same
	// backpressure-into-TCP discipline as the gateway tier, now applied
	// per shard pool.
	QueueHigh int
	QueueLow  int

	// SpillLimit bounds unacknowledged commits held across shard
	// outages, summed over every shard's spill (default 65536).
	SpillLimit int
	// AckTimeout re-sends a commit its shard has not acked (default
	// 5s); ReplayInterval is the spill scan period (default 1s).
	AckTimeout     time.Duration
	ReplayInterval time.Duration

	// BreakerThreshold consecutive failed dials open a trunk's breaker
	// (default 3); BreakerCooldown is the open period (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// RetryAfterHint is the reconnect delay handed to shed or drained
	// clients (default 2s).
	RetryAfterHint time.Duration

	// Logger receives operational events; defaults to slog.Default().
	Logger *slog.Logger
	// Telemetry is the registry router instruments register on; nil
	// creates a private one.
	Telemetry *telemetry.Registry
}

// Router terminates beacon sessions and gateway trunks and multiplexes
// them onto per-shard trunk pools.
type Router struct {
	cfg      Config
	log      *slog.Logger
	reg      *telemetry.Registry
	tel      routerTelemetry
	upgrader wsproto.Upgrader

	pools []*shardPool

	draining  atomic.Bool
	sessMu    sync.Mutex
	sessConns map[*wsproto.Conn]struct{}
	sessWG    sync.WaitGroup

	// streamID numbers router-originated streams (beacon sessions and
	// relayed gateway commits alike); stream 0 is never used.
	streamID atomic.Uint64

	// relays maps router streams of trunk-relayed sessions back to
	// their origin gateway connection and stream, so shard acks can be
	// forwarded; relayByOrigin dedups gateway replays of the same
	// commit onto one router stream.
	relayMu       sync.Mutex
	relays        map[uint64]*relayEntry
	relayByOrigin map[string]uint64

	// opens maps a gateway's origin stream (gatewayID/stream) to the
	// router stream and shard fixed at Open time, so advisory Events can
	// follow their Open even when the gateway round-robins the two
	// frames onto different trunk connections. Two generations bound the
	// memory when gateways die without committing.
	opensMu   sync.Mutex
	opensCur  map[string]relayOpen
	opensPrev map[string]relayOpen

	stopCh    chan struct{}
	stopOnce  sync.Once
	runnersWG sync.WaitGroup
}

// relayEntry is the return path for one trunk-relayed stream.
type relayEntry struct {
	origin       *wsproto.Conn
	originStream uint64
	originKey    string
	shard        int
}

// New validates cfg and returns a started Router: every shard pool's
// trunk runners and replay loop are live. Callers own serving HTTP (see
// Server) and must Close the router when done.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: config requires at least one shard trunk URL")
	}
	if cfg.RouterID == "" {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("router: generating id: %w", err)
		}
		cfg.RouterID = "rt-" + hex.EncodeToString(b[:])
	}
	if cfg.TrunksPerShard <= 0 {
		cfg.TrunksPerShard = 2
	}
	if cfg.MaxMessageSize == 0 {
		cfg.MaxMessageSize = 16 << 10
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	switch {
	case cfg.KeepAliveInterval == 0:
		cfg.KeepAliveInterval = 30 * time.Second
	case cfg.KeepAliveInterval < 0:
		cfg.KeepAliveInterval = 0
	}
	if cfg.MaxExposure == 0 {
		cfg.MaxExposure = 30 * time.Minute
	}
	if cfg.BatchBytes == 0 {
		cfg.BatchBytes = 32 << 10
	}
	if cfg.BatchAge == 0 {
		cfg.BatchAge = 50 * time.Millisecond
	}
	if cfg.QueueHigh == 0 {
		cfg.QueueHigh = 64
	}
	if cfg.QueueLow == 0 || cfg.QueueLow >= cfg.QueueHigh {
		cfg.QueueLow = cfg.QueueHigh / 4
	}
	if cfg.SpillLimit == 0 {
		cfg.SpillLimit = 1 << 16
	}
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.ReplayInterval == 0 {
		cfg.ReplayInterval = time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.RetryAfterHint == 0 {
		cfg.RetryAfterHint = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	r := &Router{
		cfg: cfg,
		log: cfg.Logger,
		reg: reg,
		upgrader: wsproto.Upgrader{
			MaxMessageSize:    cfg.MaxMessageSize,
			EnableCompression: true,
		},
		sessConns:     map[*wsproto.Conn]struct{}{},
		relays:        map[uint64]*relayEntry{},
		relayByOrigin: map[string]uint64{},
		opensCur:      map[string]relayOpen{},
		stopCh:        make(chan struct{}),
	}
	r.tel = newRouterTelemetry(reg, r)
	for i, u := range cfg.Shards {
		p := newShardPool(r, i, u)
		r.pools = append(r.pools, p)
		for _, t := range p.trunks {
			r.runnersWG.Add(1)
			go t.run()
		}
		r.runnersWG.Add(1)
		go p.replayLoop()
	}
	return r, nil
}

// Telemetry returns the router's metrics registry.
func (r *Router) Telemetry() *telemetry.Registry { return r.reg }

// SessionCount returns the number of live beacon sessions and gateway
// trunks terminated here.
func (r *Router) SessionCount() int {
	r.sessMu.Lock()
	defer r.sessMu.Unlock()
	return len(r.sessConns)
}

// poolFor returns the shard pool owning a session key.
func (r *Router) poolFor(key string) *shardPool {
	return r.pools[shardmerge.ShardFor(key, len(r.pools))]
}

// spillPending sums unacknowledged commits across every shard pool.
func (r *Router) spillPending() int {
	n := 0
	for _, p := range r.pools {
		n += p.spillPending()
	}
	return n
}

// shed refuses the request with 503 and the router's Retry-After hint.
func (r *Router) shed(w http.ResponseWriter, reason string) {
	r.tel.sheds.With(reason).Inc()
	w.Header().Set("Retry-After",
		strconv.Itoa(int((r.cfg.RetryAfterHint+time.Second-1)/time.Second)))
	http.Error(w, "router "+reason, http.StatusServiceUnavailable)
}

// originAllowed applies the admission allowlist to an Origin header.
func (r *Router) originAllowed(origin string) bool {
	if len(r.cfg.AllowedOrigins) == 0 {
		return true
	}
	if origin == "" {
		return false
	}
	host := origin
	if u, err := url.Parse(origin); err == nil && u.Hostname() != "" {
		host = u.Hostname()
	}
	for _, allowed := range r.cfg.AllowedOrigins {
		if strings.EqualFold(host, allowed) ||
			strings.HasSuffix(strings.ToLower(host), "."+strings.ToLower(allowed)) {
			return true
		}
	}
	return false
}

// ServeHTTP is the beacon endpoint: admission control, WebSocket
// upgrade, then the session protocol. The session's shard is decided
// the moment its payload (and thus nonce) is known.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch {
	case r.draining.Load():
		r.shed(w, ShedDraining)
		return
	case r.cfg.MaxSessions > 0 && r.SessionCount() >= r.cfg.MaxSessions:
		r.shed(w, ShedCapacity)
		return
	case r.spillPending() >= r.cfg.SpillLimit:
		r.shed(w, ShedSpill)
		return
	case !r.originAllowed(req.Header.Get("Origin")):
		r.tel.sheds.With(ShedOrigin).Inc()
		http.Error(w, "origin not allowed", http.StatusForbidden)
		return
	}
	conn, err := r.upgrader.Upgrade(w, req)
	if err != nil {
		r.log.Debug("router: handshake rejected", "err", err, "remote", req.RemoteAddr)
		return
	}
	r.tel.connections.Add(1)
	if r.draining.Load() {
		_ = conn.Close(wsproto.CloseServiceRestart, r.drainCloseReason())
		return
	}
	conn.ReuseReadBuffer()
	r.trackSession(conn)
	go func() {
		defer r.untrackSession(conn)
		r.runSession(conn)
	}()
}

func (r *Router) trackSession(conn *wsproto.Conn) {
	r.sessWG.Add(1)
	r.sessMu.Lock()
	r.sessConns[conn] = struct{}{}
	r.sessMu.Unlock()
	r.tel.sessionsActive.Add(1)
}

func (r *Router) untrackSession(conn *wsproto.Conn) {
	r.sessMu.Lock()
	delete(r.sessConns, conn)
	r.sessMu.Unlock()
	r.tel.sessionsActive.Add(-1)
	r.sessWG.Done()
}

// drainCloseReason is the close-frame reason drained clients receive.
func (r *Router) drainCloseReason() string {
	return "draining retry-after=" + r.cfg.RetryAfterHint.String()
}

// stageOffset computes a trace stage offset relative to the beacon's
// stamped send time, clamped like the collector's trace adoption.
func stageOffset(sentUnixNanos int64, at time.Time) time.Duration {
	off := at.Sub(time.Unix(0, sentUnixNanos))
	if off < 0 {
		return 0
	}
	if off > maxStageSkew {
		return maxStageSkew
	}
	return off
}

// runSession drives one beacon connection end to end: payload
// handshake, shard selection by nonce, keepalive, event collection, and
// the commit handoff into the owning shard's spill/forward pipeline.
func (r *Router) runSession(conn *wsproto.Conn) {
	remote := conn.RemoteAddr().String()
	if host, _, ok := strings.Cut(remote, ":"); ok {
		remote = host
	}
	if strings.HasPrefix(remote, "[") { // IPv6 [addr]:port
		remote = strings.Trim(remote, "[]")
	}
	connectedAt := time.Now()

	_ = conn.SetReadDeadline(connectedAt.Add(r.cfg.HandshakeTimeout))
	op, msg, err := conn.ReadMessage()
	if err != nil || !op.IsData() {
		_ = conn.Close(wsproto.ClosePolicyViolation, "no payload")
		return
	}
	recvAt := time.Now()
	var payload beacon.Payload
	if op == wsproto.OpBinary {
		payload, err = beacon.DecodeBinary(msg)
	} else {
		payload, err = beacon.Decode(string(msg))
	}
	if err != nil {
		r.log.Debug("router: bad payload", "err", err, "remote", remote)
		_ = conn.Close(wsproto.ClosePolicyViolation, "bad payload")
		return
	}
	// The nonce is both the replay-dedup key and the shard key, so a
	// nonce-less payload gets one minted before the shard is chosen —
	// client retries that carry the nonce then land on the same shard.
	if payload.Nonce == "" {
		payload.Nonce = beacon.NewNonce()
	}
	pool := r.poolFor(payload.Nonce)
	stream := r.streamID.Add(1)

	traced := payload.TraceID != "" && payload.TraceSent > 0
	var routerRecv time.Duration
	if traced {
		routerRecv = stageOffset(payload.TraceSent, recvAt)
	}

	// The forward queue decouples this session's reads from its shard's
	// trunk health; the high watermark stalls reads into the client's
	// TCP window rather than growing router memory.
	q := newSessionQueue(r.cfg.QueueHigh, r.cfg.QueueLow)
	defer q.close()
	var fwdWG sync.WaitGroup
	fwdWG.Add(1)
	go func() {
		defer fwdWG.Done()
		r.forwardLoop(pool, q)
	}()
	q.push(trunk.AppendFrame(nil, trunk.Frame{
		Type: trunk.Open, Stream: stream,
		RemoteIP:    remote,
		ConnectedAt: connectedAt.UnixNano(),
		Payload:     payload.Encode(),
	}))

	hardStop := connectedAt.Add(r.cfg.MaxExposure)
	renewDeadline := func() {
		if r.draining.Load() {
			return
		}
		d := hardStop
		if ka := r.cfg.KeepAliveInterval; ka > 0 {
			if soft := time.Now().Add(2 * ka); soft.Before(d) {
				d = soft
			}
		}
		_ = conn.SetReadDeadline(d)
	}
	conn.SetPongHandler(func([]byte) { renewDeadline() })
	renewDeadline()
	if ka := r.cfg.KeepAliveInterval; ka > 0 {
		stopPings := make(chan struct{})
		defer close(stopPings)
		go func() {
			t := time.NewTicker(ka)
			defer t.Stop()
			for {
				select {
				case <-stopPings:
					return
				case <-t.C:
					_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
					err := conn.Ping(nil)
					_ = conn.SetWriteDeadline(time.Time{})
					if err != nil {
						return
					}
				}
			}
		}()
	}

	for {
		op, msg, err := conn.ReadMessage()
		if err != nil {
			break
		}
		renewDeadline()
		var e beacon.Event
		var isEvent bool
		if op == wsproto.OpBinary {
			e, isEvent, err = beacon.DecodeBinaryEventUpdate(msg)
		} else {
			e, isEvent, err = beacon.DecodeEventUpdate(string(msg))
		}
		if err != nil {
			r.log.Debug("router: bad event update", "err", err, "remote", remote)
			continue
		}
		if isEvent {
			r.tel.events.Add(1)
			payload.Events = append(payload.Events, e)
			var evText string
			if op == wsproto.OpBinary {
				evText = beacon.EncodeEventUpdate(e)
			} else {
				evText = string(msg)
			}
			q.push(trunk.AppendFrame(nil, trunk.Frame{
				Type: trunk.Event, Stream: stream, Payload: evText,
			}))
		}
	}
	// Stop forwarding advisory frames before building the commit, so
	// the commit is the last word on this stream.
	q.close()
	fwdWG.Wait()

	exposure := time.Since(connectedAt)
	if exposure > r.cfg.MaxExposure {
		exposure = r.cfg.MaxExposure
	}
	var stages []trunk.Stage
	if traced {
		stages = []trunk.Stage{
			{Name: trace.StageGatewayRecv, Offset: routerRecv},
			{Name: trace.StageTrunkForward, Offset: stageOffset(payload.TraceSent, time.Now())},
		}
	}
	commit := trunk.AppendFrame(nil, trunk.Frame{
		Type: trunk.Commit, Stream: stream,
		RemoteIP:    remote,
		ConnectedAt: connectedAt.UnixNano(),
		Exposure:    exposure,
		Payload:     payload.Encode(),
		Stages:      stages,
	})
	// Spill before closing the client: once the commit is in the shard
	// pool's spill buffer the replay loop guarantees delivery, so the
	// close handshake the client treats as its ack is never a lie.
	r.tel.commits.Add(1)
	pool.spillCommit(stream, commit)

	if r.draining.Load() {
		_ = conn.Close(wsproto.CloseServiceRestart, r.drainCloseReason())
	} else {
		_ = conn.Close(wsproto.CloseNormal, "")
	}
}

// forwardLoop drains one session's queue onto its shard pool's healthy
// trunks. Advisory frames are droppable: with no healthy trunk in the
// pool they are discarded, since the accounting state travels
// self-contained in the commit.
func (r *Router) forwardLoop(p *shardPool, q *sessionQueue) {
	var t *trunkConn
	for {
		frame, ok := q.pop()
		if !ok {
			return
		}
		if t == nil || !t.isHealthy() {
			t = p.pickTrunk()
		}
		if t == nil || !t.enqueue(frame) {
			p.tel.queueDrops.Add(1)
		}
	}
}

// ShardHealth is one shard's slice of the /healthz body.
type ShardHealth struct {
	ShardID       int `json:"shard_id"`
	TrunksTotal   int `json:"trunks_total"`
	TrunksHealthy int `json:"trunks_healthy"`
	SpillPending  int `json:"spill_pending"`
}

// HealthStatus is the router's /healthz body.
type HealthStatus struct {
	// Status is "ok" (every trunk of every shard up), "degraded" (every
	// shard reachable but some trunks down), or "unhealthy" (at least
	// one shard has no healthy trunk: its slice of the keyspace is
	// spilling and nothing can re-home it, because ownership is the
	// hash, not the topology).
	Status       string        `json:"status"`
	RouterID     string        `json:"router_id"`
	Shards       []ShardHealth `json:"shards"`
	Sessions     int           `json:"sessions"`
	SpillPending int           `json:"spill_pending"`
	Draining     bool          `json:"draining"`
}

// Health reports the router's degradation level.
func (r *Router) Health() HealthStatus {
	h := HealthStatus{
		RouterID: r.cfg.RouterID,
		Sessions: r.SessionCount(),
		Draining: r.draining.Load(),
	}
	allUp, anyDead := true, false
	for _, p := range r.pools {
		sh := ShardHealth{
			ShardID:       p.id,
			TrunksTotal:   len(p.trunks),
			TrunksHealthy: p.healthyTrunks(),
			SpillPending:  p.spillPending(),
		}
		if sh.TrunksHealthy < sh.TrunksTotal {
			allUp = false
		}
		if sh.TrunksHealthy == 0 {
			anyDead = true
		}
		h.SpillPending += sh.SpillPending
		h.Shards = append(h.Shards, sh)
	}
	switch {
	case anyDead:
		h.Status = "unhealthy"
	case allUp:
		h.Status = "ok"
	default:
		h.Status = "degraded"
	}
	return h
}

// Drain sheds new sessions, forces live ones to commit and hands them
// back with a resumable close (1012 + retry-after), then waits up to
// grace for every shard's spill buffer to empty. It returns the number
// of commits still unacknowledged when the grace expired — 0 means
// every impression this router acked reached its shard.
func (r *Router) Drain(grace time.Duration) int {
	r.draining.Store(true)
	r.sessMu.Lock()
	for conn := range r.sessConns {
		_ = conn.Close(wsproto.CloseServiceRestart, r.drainCloseReason())
	}
	r.sessMu.Unlock()

	deadline := time.Now().Add(grace)
	done := make(chan struct{})
	go func() {
		r.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		r.log.Warn("router: drain grace expired with sessions still open",
			"sessions", r.SessionCount())
	}
	for r.spillPending() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	return r.spillPending()
}

// Close stops every pool's trunk runners and replay loop and closes
// every trunk connection. Pending spill entries are abandoned; call
// Drain first for a zero-loss shutdown.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	for _, p := range r.pools {
		for _, t := range p.trunks {
			t.closeConn()
		}
	}
	r.runnersWG.Wait()
}
