package semsim

import "sync"

// pairMemo is a concurrency-safe two-level memo for symmetric
// word-pair scores: an outer sync.Map keyed by the first word holds an
// inner sync.Map keyed by the second. Two levels instead of one
// concatenated key means a cache hit allocates nothing — no joined key
// string is built on lookup — which is what makes the memo a net win
// on the context analysis's hot path (millions of repeated pairs,
// a small distinct vocabulary).
//
// Pairs are stored under their sorted order (callers canonicalise), so
// sim(a,b) and sim(b,a) share one entry.
type pairMemo struct {
	m sync.Map // first word -> *sync.Map(second word -> memoEntry)
}

// memoEntry is one cached result, including the not-in-vocabulary case
// so unknown words are not re-searched either.
type memoEntry struct {
	sim float64
	ok  bool
}

// load returns the cached entry for the (already canonicalised) pair.
func (p *pairMemo) load(a, b string) (memoEntry, bool) {
	v, hit := p.m.Load(a)
	if !hit {
		return memoEntry{}, false
	}
	e, hit := v.(*sync.Map).Load(b)
	if !hit {
		return memoEntry{}, false
	}
	return e.(memoEntry), true
}

// store caches the result for the (already canonicalised) pair.
func (p *pairMemo) store(a, b string, e memoEntry) {
	v, hit := p.m.Load(a)
	if !hit {
		v, _ = p.m.LoadOrStore(a, &sync.Map{})
	}
	v.(*sync.Map).Store(b, e)
}
