package semsim

import (
	"math"
)

// Similarity computes concept-to-concept Leacock–Chodorow similarity:
// -log(len / 2D), where len counts nodes on the shortest IS-A path and D
// is the taxonomy's maximum depth. Higher is more similar; identical
// concepts score -log(1/2D) = log(2D).
//
// It returns ok=false when either concept is unknown.
//
// Results are memoized per concept pair (the taxonomy is immutable, so
// entries never invalidate); concurrent callers share the cache.
func (t *Taxonomy) Similarity(a, b string) (sim float64, ok bool) {
	if b < a {
		a, b = b, a
	}
	if e, hit := t.conceptMemo.load(a, b); hit {
		return e.sim, e.ok
	}
	ia, oka := t.byName[a]
	ib, okb := t.byName[b]
	if !oka || !okb {
		t.conceptMemo.store(a, b, memoEntry{})
		return 0, false
	}
	l := t.pathLen(ia, ib)
	sim = -math.Log(float64(l) / float64(2*t.maxDepth))
	t.conceptMemo.store(a, b, memoEntry{sim: sim, ok: true})
	return sim, true
}

// MaxSimilarity returns the taxonomy's maximum attainable similarity,
// log(2D) — the score of a concept with itself.
func (t *Taxonomy) MaxSimilarity() float64 {
	return math.Log(float64(2 * t.maxDepth))
}

// PathSimilarity returns the LC score of a (possibly fractional) path
// spanning l nodes: -log(l / 2D). Useful for expressing thresholds in
// path-length terms, which stay meaningful if the taxonomy grows deeper.
func (t *Taxonomy) PathSimilarity(l float64) float64 {
	return -math.Log(l / float64(2*t.maxDepth))
}

// WordSimilarity computes the similarity between two word forms as the
// maximum over all concept senses of each word, the standard WordNet
// word-level lift of a concept measure. It returns ok=false when either
// word has no sense in the taxonomy.
//
// Results are memoized per normalized word pair: the context analysis
// scores the same campaign keywords against the same publisher topics
// across thousands of publishers, so after warm-up a call is two
// lock-free map hits and zero allocations.
func (t *Taxonomy) WordSimilarity(a, b string) (sim float64, ok bool) {
	na, nb := normalize(a), normalize(b)
	if nb < na {
		na, nb = nb, na
	}
	if e, hit := t.wordMemo.load(na, nb); hit {
		return e.sim, e.ok
	}
	sim, ok = t.wordSimilarity(na, nb)
	t.wordMemo.store(na, nb, memoEntry{sim: sim, ok: ok})
	return sim, ok
}

// wordSimilarity is the uncached sense-pair maximisation; na and nb are
// already normalized.
func (t *Taxonomy) wordSimilarity(na, nb string) (sim float64, ok bool) {
	as := t.byLemma[na]
	bs := t.byLemma[nb]
	if len(as) == 0 || len(bs) == 0 {
		return 0, false
	}
	best := math.Inf(-1)
	for _, ia := range as {
		for _, ib := range bs {
			l := t.pathLen(ia, ib)
			if s := -math.Log(float64(l) / float64(2*t.maxDepth)); s > best {
				best = s
			}
		}
	}
	return best, true
}

// Matcher decides contextual relevance between a campaign's keywords and
// a publisher's keywords/topics, implementing the paper's two-clause
// rule: (1) any publisher keyword equals any campaign keyword, or (2) any
// publisher topic is semantically similar to any campaign keyword with
// Leacock–Chodorow similarity at or above Threshold.
type Matcher struct {
	Taxonomy *Taxonomy
	// Threshold is the minimum LC similarity for clause (2). The paper
	// does not publish its cut-off, so the default is expressed in
	// path-length terms: concepts connected by a path of at most 3
	// nodes — the topic itself, its parent vertical, and sibling topics
	// under the same vertical — count as similar. This tight cut-off
	// reproduces Table 2's low audit-side fractions for the research
	// campaigns; widen it (e.g. PathSimilarity(5.5), one macro-vertical)
	// for the threshold ablation.
	Threshold float64
}

// NewMatcher returns a matcher over t with the default threshold,
// PathSimilarity(3.5): midway between a sibling 3-node path and a
// 4-node path leaving the vertical.
func NewMatcher(t *Taxonomy) *Matcher {
	return &Matcher{Taxonomy: t, Threshold: t.PathSimilarity(3.5)}
}

// KeywordMatch reports whether any publisher keyword exactly matches any
// campaign keyword (clause 1), case-insensitively.
func (m *Matcher) KeywordMatch(campaignKeywords, publisherKeywords []string) bool {
	set := make(map[string]struct{}, len(campaignKeywords))
	for _, k := range campaignKeywords {
		set[normalize(k)] = struct{}{}
	}
	for _, k := range publisherKeywords {
		if _, ok := set[normalize(k)]; ok {
			return true
		}
	}
	return false
}

// TopicMatch reports whether any publisher topic reaches the similarity
// threshold against any campaign keyword (clause 2). Topics or keywords
// missing from the taxonomy contribute nothing.
func (m *Matcher) TopicMatch(campaignKeywords, publisherTopics []string) bool {
	for _, topic := range publisherTopics {
		for _, kw := range campaignKeywords {
			if sim, ok := m.Taxonomy.WordSimilarity(topic, kw); ok && sim >= m.Threshold {
				return true
			}
		}
	}
	return false
}

// Relevant applies the full two-clause rule.
func (m *Matcher) Relevant(campaignKeywords, publisherKeywords, publisherTopics []string) bool {
	return m.KeywordMatch(campaignKeywords, publisherKeywords) ||
		m.TopicMatch(campaignKeywords, publisherTopics)
}

// Query is one campaign's keyword set compiled for repeated matching:
// the normalized keyword set is built once instead of once per
// publisher, which is where the per-call KeywordMatch allocations went
// when scoring thousands of publishers against the same campaign.
type Query struct {
	m        *Matcher
	keywords []string // normalized campaign keywords
	set      map[string]struct{}
}

// Compile prepares campaignKeywords for repeated Relevant calls.
func (m *Matcher) Compile(campaignKeywords []string) *Query {
	q := &Query{
		m:        m,
		keywords: make([]string, 0, len(campaignKeywords)),
		set:      make(map[string]struct{}, len(campaignKeywords)),
	}
	for _, k := range campaignKeywords {
		nk := normalize(k)
		q.keywords = append(q.keywords, nk)
		q.set[nk] = struct{}{}
	}
	return q
}

// KeywordMatch is clause (1) against the compiled keyword set.
func (q *Query) KeywordMatch(publisherKeywords []string) bool {
	for _, k := range publisherKeywords {
		if _, ok := q.set[normalize(k)]; ok {
			return true
		}
	}
	return false
}

// TopicMatch is clause (2) against the compiled keywords.
func (q *Query) TopicMatch(publisherTopics []string) bool {
	for _, topic := range publisherTopics {
		for _, kw := range q.keywords {
			if sim, ok := q.m.Taxonomy.WordSimilarity(topic, kw); ok && sim >= q.m.Threshold {
				return true
			}
		}
	}
	return false
}

// Relevant applies the full two-clause rule for one publisher.
func (q *Query) Relevant(publisherKeywords, publisherTopics []string) bool {
	return q.KeywordMatch(publisherKeywords) || q.TopicMatch(publisherTopics)
}

// WuPalmer computes the Wu-Palmer similarity between two concepts:
// 2*depth(LCA) / (depth(a) + depth(b)), in (0, 1]. It is the other
// standard WordNet path measure; exposing it alongside Leacock-Chodorow
// lets the context analysis quantify how sensitive Table 2 is to the
// paper's (undisclosed) choice of similarity function.
func (t *Taxonomy) WuPalmer(a, b string) (float64, bool) {
	ia, oka := t.byName[a]
	ib, okb := t.byName[b]
	if !oka || !okb {
		return 0, false
	}
	lca := t.lowestCommonAncestor(ia, ib)
	da := float64(t.nodes[ia].depth)
	db := float64(t.nodes[ib].depth)
	return 2 * float64(t.nodes[lca].depth) / (da + db), true
}

// lowestCommonAncestor returns the index of the deepest shared ancestor.
func (t *Taxonomy) lowestCommonAncestor(a, b int) int {
	x, y := a, b
	for t.nodes[x].depth > t.nodes[y].depth {
		x = t.nodes[x].parent
	}
	for t.nodes[y].depth > t.nodes[x].depth {
		y = t.nodes[y].parent
	}
	for x != y {
		x = t.nodes[x].parent
		y = t.nodes[y].parent
	}
	return x
}
