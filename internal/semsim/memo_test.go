package semsim

import (
	"sync"
	"testing"
)

// Memoized scores must be identical to the uncached computation, in
// both argument orders, for known and unknown words alike.
func TestWordSimilarityMemoConsistent(t *testing.T) {
	tx := DefaultTaxonomy()
	pairs := [][2]string{
		{"cars", "motor"},
		{"motor", "cars"}, // reversed order hits the same entry
		{"cars", "cars"},
		{"cars", "no-such-word"},
		{"Football", "SOCCER"}, // normalization feeds the memo key
	}
	for _, p := range pairs {
		wantSim, wantOK := tx.wordSimilarity(normalize(p[0]), normalize(p[1]))
		for rep := 0; rep < 3; rep++ { // rep 0 fills, reps 1-2 hit
			sim, ok := tx.WordSimilarity(p[0], p[1])
			if sim != wantSim || ok != wantOK {
				t.Fatalf("WordSimilarity(%q, %q) rep %d = (%v, %v), uncached (%v, %v)",
					p[0], p[1], rep, sim, ok, wantSim, wantOK)
			}
		}
	}
}

func TestSimilarityMemoConsistent(t *testing.T) {
	tx := DefaultTaxonomy()
	concepts := tx.Concepts()
	if len(concepts) < 4 {
		t.Fatalf("default taxonomy too small: %d concepts", len(concepts))
	}
	a, b := concepts[1], concepts[len(concepts)-1]

	s1, ok1 := tx.Similarity(a, b)
	s2, ok2 := tx.Similarity(b, a) // symmetric, shares the entry
	s3, ok3 := tx.Similarity(a, b) // cache hit
	if s1 != s2 || s1 != s3 || !ok1 || !ok2 || !ok3 {
		t.Fatalf("Similarity not stable across orders/repeats: %v %v %v", s1, s2, s3)
	}
	if _, ok := tx.Similarity(a, "missing-concept"); ok {
		t.Fatal("unknown concept scored ok on first call")
	}
	if _, ok := tx.Similarity(a, "missing-concept"); ok {
		t.Fatal("unknown concept scored ok from the memo")
	}
}

// Concurrent mixed readers must agree with the serial answer; run under
// -race this also proves the memo's safety claim.
func TestWordSimilarityMemoConcurrent(t *testing.T) {
	tx := DefaultTaxonomy()
	words := []string{"cars", "motor", "football", "soccer", "banking", "finance", "nope"}

	type res struct {
		sim float64
		ok  bool
	}
	want := map[[2]string]res{}
	for _, a := range words {
		for _, b := range words {
			sim, ok := DefaultTaxonomy().WordSimilarity(a, b) // fresh taxonomy: uncached truth
			want[[2]string{a, b}] = res{sim, ok}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := words[(g+i)%len(words)]
				b := words[(g*3+i*7)%len(words)]
				sim, ok := tx.WordSimilarity(a, b)
				w := want[[2]string{a, b}]
				if sim != w.sim || ok != w.ok {
					t.Errorf("concurrent WordSimilarity(%q, %q) = (%v, %v), want (%v, %v)",
						a, b, sim, ok, w.sim, w.ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// A compiled Query must agree with the per-call Matcher methods on
// every clause.
func TestQueryMatchesMatcher(t *testing.T) {
	m := NewMatcher(DefaultTaxonomy())
	campaign := []string{"Cars", "insurance"}
	q := m.Compile(campaign)

	cases := []struct {
		keywords, topics []string
	}{
		{[]string{"cars", "deals"}, nil},            // clause 1 hit
		{[]string{"unrelated"}, []string{"motor"}},  // clause 2 hit (parent vertical)
		{[]string{"unrelated"}, []string{"tennis"}}, // miss: far vertical
		{nil, nil}, // empty publisher
		{[]string{"INSURANCE"}, []string{"physics"}}, // case-folded clause 1
	}
	for _, c := range cases {
		if got, want := q.KeywordMatch(c.keywords), m.KeywordMatch(campaign, c.keywords); got != want {
			t.Errorf("Query.KeywordMatch(%v) = %v, Matcher says %v", c.keywords, got, want)
		}
		if got, want := q.TopicMatch(c.topics), m.TopicMatch(campaign, c.topics); got != want {
			t.Errorf("Query.TopicMatch(%v) = %v, Matcher says %v", c.topics, got, want)
		}
		if got, want := q.Relevant(c.keywords, c.topics), m.Relevant(campaign, c.keywords, c.topics); got != want {
			t.Errorf("Query.Relevant(%v, %v) = %v, Matcher says %v", c.keywords, c.topics, got, want)
		}
	}
}

func BenchmarkWordSimilarityMemoHit(b *testing.B) {
	tx := DefaultTaxonomy()
	tx.WordSimilarity("cars", "motor") // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.WordSimilarity("cars", "motor")
	}
}
