package semsim

import (
	"math"
	"testing"
	"testing/quick"
)

func smallTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	tx, err := NewTaxonomyBuilder("root").
		Add("a", "root", "alpha").
		Add("b", "root", "beta").
		Add("a1", "a", "alpha one").
		Add("a2", "a", "alpha two").
		Add("a1x", "a1", "deep").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewTaxonomyBuilder("root").Add("x", "missing").Build(); err == nil {
		t.Fatal("expected unknown-parent error")
	}
	if _, err := NewTaxonomyBuilder("root").Add("x", "root").Add("x", "root").Build(); err == nil {
		t.Fatal("expected duplicate-concept error")
	}
}

func TestMaxDepth(t *testing.T) {
	tx := smallTaxonomy(t)
	if tx.MaxDepth() != 4 {
		t.Fatalf("MaxDepth = %d, want 4 (root=1, a=2, a1=3, a1x=4)", tx.MaxDepth())
	}
}

func TestSimilaritySelfIsMax(t *testing.T) {
	tx := smallTaxonomy(t)
	sim, ok := tx.Similarity("a1", "a1")
	if !ok {
		t.Fatal("self similarity not ok")
	}
	if math.Abs(sim-tx.MaxSimilarity()) > 1e-12 {
		t.Fatalf("self sim = %v, want max %v", sim, tx.MaxSimilarity())
	}
}

func TestSimilarityPathLengths(t *testing.T) {
	tx := smallTaxonomy(t)
	d := float64(2 * tx.MaxDepth())
	cases := []struct {
		a, b string
		len  float64
	}{
		{"a1", "a2", 3}, // a1 - a - a2
		{"a1", "a", 2},  // parent/child
		{"a1", "b", 4},  // a1 - a - root - b
		{"a1x", "b", 5}, // deepest cross-branch path
		{"root", "root", 1},
	}
	for _, c := range cases {
		sim, ok := tx.Similarity(c.a, c.b)
		if !ok {
			t.Fatalf("Similarity(%s,%s) not ok", c.a, c.b)
		}
		want := -math.Log(c.len / d)
		if math.Abs(sim-want) > 1e-12 {
			t.Errorf("Similarity(%s,%s) = %v, want %v (len %v)", c.a, c.b, sim, want, c.len)
		}
	}
}

func TestSimilarityUnknownConcept(t *testing.T) {
	tx := smallTaxonomy(t)
	if _, ok := tx.Similarity("a", "nope"); ok {
		t.Fatal("unknown concept reported ok")
	}
}

// Properties: LC similarity is symmetric, maximal on the diagonal, and
// bounded by the self-similarity.
func TestSimilarityProperties(t *testing.T) {
	tx := DefaultTaxonomy()
	concepts := tx.Concepts()
	err := quick.Check(func(i, j uint16) bool {
		a := concepts[int(i)%len(concepts)]
		b := concepts[int(j)%len(concepts)]
		sab, ok1 := tx.Similarity(a, b)
		sba, ok2 := tx.Similarity(b, a)
		if !ok1 || !ok2 {
			return false
		}
		if math.Abs(sab-sba) > 1e-12 {
			return false
		}
		if sab > tx.MaxSimilarity()+1e-12 {
			return false
		}
		if a == b && math.Abs(sab-tx.MaxSimilarity()) > 1e-12 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWordSimilarityUsesLemmas(t *testing.T) {
	tx := DefaultTaxonomy()
	// "soccer" is a lemma of the football concept.
	simLemma, ok := tx.WordSimilarity("soccer", "football")
	if !ok {
		t.Fatal("lemma lookup failed")
	}
	if math.Abs(simLemma-tx.MaxSimilarity()) > 1e-12 {
		t.Fatalf("soccer~football = %v, want max (same concept)", simLemma)
	}
	if _, ok := tx.WordSimilarity("soccer", "xyzzy"); ok {
		t.Fatal("unknown word reported ok")
	}
}

func TestWordSimilarityCaseInsensitive(t *testing.T) {
	tx := DefaultTaxonomy()
	a, ok1 := tx.WordSimilarity("Football", "RESEARCH")
	b, ok2 := tx.WordSimilarity("football", "research")
	if !ok1 || !ok2 || a != b {
		t.Fatalf("case sensitivity: %v/%v vs %v/%v", a, ok1, b, ok2)
	}
}

func TestDomainOrdering(t *testing.T) {
	tx := DefaultTaxonomy()
	// research ~ universities (same knowledge branch) must beat
	// research ~ football (cross-branch).
	near, _ := tx.WordSimilarity("research", "university")
	far, _ := tx.WordSimilarity("research", "football")
	if near <= far {
		t.Fatalf("research~university (%v) should exceed research~football (%v)", near, far)
	}
	// football ~ basketball (siblings) must beat football ~ finance.
	sib, _ := tx.WordSimilarity("football", "basketball")
	cross, _ := tx.WordSimilarity("football", "banking")
	if sib <= cross {
		t.Fatalf("football~basketball (%v) should exceed football~banking (%v)", sib, cross)
	}
	// telematics ~ telecommunications is a lemma identity.
	tele, ok := tx.WordSimilarity("telematics", "telecommunications")
	if !ok || math.Abs(tele-tx.MaxSimilarity()) > 1e-12 {
		t.Fatalf("telematics~telecommunications = %v, %v", tele, ok)
	}
}

func TestLookupLemma(t *testing.T) {
	tx := DefaultTaxonomy()
	got := tx.LookupLemma("SOCCER")
	if len(got) != 1 || got[0] != "football" {
		t.Fatalf("LookupLemma(SOCCER) = %v", got)
	}
	if tx.LookupLemma("not-a-word") != nil {
		t.Fatal("unknown lemma returned concepts")
	}
}

func TestMatcherKeywordClause(t *testing.T) {
	m := NewMatcher(DefaultTaxonomy())
	if !m.KeywordMatch([]string{"Research"}, []string{"innovation", "research"}) {
		t.Fatal("exact keyword match failed")
	}
	if m.KeywordMatch([]string{"research"}, []string{"football"}) {
		t.Fatal("non-matching keywords matched")
	}
	if m.KeywordMatch(nil, []string{"x"}) || m.KeywordMatch([]string{"x"}, nil) {
		t.Fatal("empty side matched")
	}
}

func TestMatcherTopicClause(t *testing.T) {
	m := NewMatcher(DefaultTaxonomy())
	// A physics publisher is topically relevant to a research campaign
	// (sibling topics under the science vertical).
	if !m.TopicMatch([]string{"research"}, []string{"physics"}) {
		t.Fatal("research campaign should match physics topic")
	}
	// The default threshold stops at the vertical boundary: university
	// (education vertical) is NOT similar enough to research (science
	// vertical), matching Table 2's low audit fractions.
	if m.TopicMatch([]string{"research"}, []string{"university"}) {
		t.Fatal("default threshold leaked across verticals")
	}
	// A gambling site is not relevant either.
	if m.TopicMatch([]string{"research"}, []string{"casino"}) {
		t.Fatal("research campaign matched casino topic")
	}
	// Unknown topics never match.
	if m.TopicMatch([]string{"research"}, []string{"zzzz"}) {
		t.Fatal("unknown topic matched")
	}
	// The widened ablation threshold recovers macro-vertical matches.
	wide := &Matcher{Taxonomy: m.Taxonomy, Threshold: m.Taxonomy.PathSimilarity(5.5)}
	if !wide.TopicMatch([]string{"research"}, []string{"university"}) {
		t.Fatal("widened threshold should match within the macro-vertical")
	}
}

func TestMatcherRelevantCombines(t *testing.T) {
	m := NewMatcher(DefaultTaxonomy())
	// Keyword clause fires even when topics are unrelated.
	if !m.Relevant([]string{"football"}, []string{"football"}, []string{"casino"}) {
		t.Fatal("keyword clause did not fire")
	}
	// Topic clause fires without keyword overlap.
	if !m.Relevant([]string{"football"}, []string{"sports daily"}, []string{"basketball"}) {
		t.Fatal("topic clause did not fire")
	}
	if m.Relevant([]string{"football"}, []string{"cooking"}, []string{"recipes"}) {
		t.Fatal("irrelevant publisher reported relevant")
	}
}

func TestMatcherThresholdAblation(t *testing.T) {
	tx := DefaultTaxonomy()
	strict := &Matcher{Taxonomy: tx, Threshold: tx.MaxSimilarity()} // only identity passes
	loose := &Matcher{Taxonomy: tx, Threshold: 0}                   // everything known passes
	if strict.TopicMatch([]string{"research"}, []string{"university"}) {
		t.Fatal("strict matcher passed non-identical topic")
	}
	if !strict.TopicMatch([]string{"research"}, []string{"research"}) {
		t.Fatal("strict matcher rejected identity")
	}
	if !loose.TopicMatch([]string{"research"}, []string{"casino"}) {
		t.Fatal("loose matcher rejected a known topic")
	}
}

func TestDefaultTaxonomyShape(t *testing.T) {
	tx := DefaultTaxonomy()
	if tx.NumConcepts() < 50 {
		t.Fatalf("default taxonomy has only %d concepts", tx.NumConcepts())
	}
	if tx.MaxDepth() < 3 {
		t.Fatalf("default taxonomy depth = %d", tx.MaxDepth())
	}
	for _, c := range []string{"research", "football", "universities", "telematics", "adult", "gambling"} {
		if !tx.HasConcept(c) {
			t.Errorf("default taxonomy missing concept %q", c)
		}
	}
}

func TestWuPalmer(t *testing.T) {
	tx := smallTaxonomy(t)
	// Identity: 2d/(d+d) = 1.
	if wp, ok := tx.WuPalmer("a1", "a1"); !ok || math.Abs(wp-1) > 1e-12 {
		t.Fatalf("self WuPalmer = %v, %v", wp, ok)
	}
	// Siblings a1, a2 (depth 3) share parent a (depth 2): 4/6.
	if wp, ok := tx.WuPalmer("a1", "a2"); !ok || math.Abs(wp-4.0/6) > 1e-12 {
		t.Fatalf("sibling WuPalmer = %v", wp)
	}
	// Cross-branch a1 (3), b (2): LCA root (1): 2/5.
	if wp, ok := tx.WuPalmer("a1", "b"); !ok || math.Abs(wp-2.0/5) > 1e-12 {
		t.Fatalf("cross-branch WuPalmer = %v", wp)
	}
	if _, ok := tx.WuPalmer("a1", "missing"); ok {
		t.Fatal("unknown concept accepted")
	}
	// Ordering agreement with Leacock-Chodorow on the default taxonomy:
	// in-vertical siblings beat cross-macro pairs under both measures.
	dt := DefaultTaxonomy()
	sibWP, _ := dt.WuPalmer("football", "basketball")
	farWP, _ := dt.WuPalmer("football", "recipes")
	if sibWP <= farWP {
		t.Fatalf("WuPalmer ordering broken: %v <= %v", sibWP, farWP)
	}
}
