package semsim

import "testing"

func BenchmarkWordSimilarity(b *testing.B) {
	tx := DefaultTaxonomy()
	for i := 0; i < b.N; i++ {
		if _, ok := tx.WordSimilarity("football", "research"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkMatcherRelevant(b *testing.B) {
	m := NewMatcher(DefaultTaxonomy())
	keywords := []string{"universities", "research", "telematics"}
	pubKeywords := []string{"futbol", "gol", "liga"}
	pubTopics := []string{"football", "basketball"}
	for i := 0; i < b.N; i++ {
		m.Relevant(keywords, pubKeywords, pubTopics)
	}
}

func BenchmarkTaxonomyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DefaultTaxonomy()
	}
}
