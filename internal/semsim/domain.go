package semsim

// DefaultTaxonomy returns the embedded display-advertising content
// taxonomy: an IS-A hierarchy over the content verticals ad networks
// assign to publishers, deep enough under the paper's campaign verticals
// (research, football, universities, telematics) for Leacock–Chodorow
// scores to separate related from unrelated topics.
//
// Levels are uniform by construction — content(1) > macro vertical(2) >
// vertical(3) > topic(4) — so shortest paths are interpretable: siblings
// span 3 nodes, same-vertical cousins 5, and any cross-macro pair at
// least 6. The default Matcher threshold (paths up to 5.5 nodes) then
// reads "contextually similar = within the same macro vertical". The
// taxonomy also covers the brand-unsafe verticals (adult, gambling,
// piracy, violence, weapons) needed by the brand-safety analyses.
func DefaultTaxonomy() *Taxonomy {
	b := NewTaxonomyBuilder("content", "content", "web content")

	// ----- Knowledge & education: the Research/General campaigns' home.
	b.Add("knowledge", "content", "knowledge", "learning", "academia")
	b.Add("education", "knowledge", "education", "teaching")
	b.Add("universities", "education", "university", "universities", "college", "campus", "higher education")
	b.Add("schools", "education", "school", "schools", "k-12")
	b.Add("online-courses", "education", "mooc", "online course", "e-learning")
	b.Add("science", "knowledge", "science", "scientific")
	b.Add("research", "science", "research", "researcher", "r&d", "scientific research")
	b.Add("physics", "science", "physics")
	b.Add("biology", "science", "biology", "life sciences")
	b.Add("engineering", "knowledge", "engineering", "engineer")
	b.Add("telematics", "engineering", "telematics", "telecommunications", "networking", "telecom")
	b.Add("computer-science", "engineering", "computer science", "informatics", "computing")
	b.Add("robotics", "engineering", "robotics", "automation")
	b.Add("reference", "knowledge", "reference")
	b.Add("encyclopedias", "reference", "encyclopedia", "wiki")
	b.Add("dictionaries", "reference", "dictionary", "thesaurus")

	// ----- Sports: the Football campaigns' home.
	b.Add("sports", "content", "sports", "sport")
	b.Add("team-sports", "sports", "team sports")
	b.Add("football", "team-sports", "football", "soccer", "futbol", "laliga", "la liga", "champions league")
	b.Add("basketball", "team-sports", "basketball", "nba", "acb")
	b.Add("rugby", "team-sports", "rugby")
	b.Add("handball", "team-sports", "handball")
	b.Add("racket-sports", "sports", "racket sports")
	b.Add("tennis", "racket-sports", "tennis", "atp", "wta")
	b.Add("padel", "racket-sports", "padel")
	b.Add("motorsport", "sports", "motorsport", "racing")
	b.Add("formula1", "motorsport", "formula 1", "f1")
	b.Add("motogp", "motorsport", "motogp", "motorcycling")
	b.Add("endurance-sports", "sports", "endurance sports")
	b.Add("cycling", "endurance-sports", "cycling", "la vuelta")
	b.Add("athletics", "endurance-sports", "athletics", "running", "marathon")
	b.Add("esports", "sports", "esports", "competitive gaming")

	// ----- News & media.
	b.Add("news", "content", "news", "journalism", "press")
	b.Add("politics", "news", "politics", "political")
	b.Add("national-politics", "politics", "national politics", "government")
	b.Add("world-politics", "politics", "world politics", "international affairs")
	b.Add("business-news", "news", "business news", "economy")
	b.Add("markets", "business-news", "markets", "stock market")
	b.Add("local-news", "news", "local news", "regional news")
	b.Add("weather", "news", "weather", "forecast")

	// ----- Entertainment.
	b.Add("entertainment", "content", "entertainment", "showbiz")
	b.Add("screen", "entertainment", "screen entertainment")
	b.Add("movies", "screen", "movies", "cinema", "film")
	b.Add("television", "screen", "tv", "television", "series")
	b.Add("streaming", "screen", "streaming", "video on demand")
	b.Add("music", "entertainment", "music")
	b.Add("concerts", "music", "concerts", "live music")
	b.Add("gaming", "entertainment", "gaming")
	b.Add("videogames", "gaming", "videogames", "video games", "consoles")
	b.Add("mobile-games", "gaming", "mobile games", "casual games")
	b.Add("celebrity", "entertainment", "celebrity", "celebrities")
	b.Add("gossip", "celebrity", "gossip", "tabloids")
	b.Add("humor", "entertainment", "humor", "memes", "jokes")

	// ----- Lifestyle.
	b.Add("lifestyle", "content", "lifestyle")
	b.Add("travel", "lifestyle", "travel", "tourism", "holidays")
	b.Add("hotels", "travel", "hotels", "accommodation")
	b.Add("flights", "travel", "flights", "airlines")
	b.Add("destinations", "travel", "destinations", "city guides")
	b.Add("food", "lifestyle", "food", "cooking")
	b.Add("recipes", "food", "recipes")
	b.Add("restaurants", "food", "restaurants", "dining")
	b.Add("fashion", "lifestyle", "fashion", "clothing", "style")
	b.Add("health", "lifestyle", "health", "wellness")
	b.Add("fitness", "health", "fitness", "gym", "exercise")
	b.Add("medicine", "health", "medicine", "medical")
	b.Add("family", "lifestyle", "family")
	b.Add("parenting", "family", "parenting", "babies")
	b.Add("home", "lifestyle", "home")
	b.Add("decor", "home", "decor", "interior design")
	b.Add("gardening", "home", "gardening", "diy")
	b.Add("automotive", "lifestyle", "automotive", "motor")
	b.Add("cars", "automotive", "cars", "car reviews")
	b.Add("motorbikes", "automotive", "motorbikes", "motorcycles")

	// ----- Commerce.
	b.Add("commerce", "content", "commerce")
	b.Add("shopping", "commerce", "shopping", "e-commerce")
	b.Add("deals", "shopping", "deals", "coupons", "discounts")
	b.Add("classifieds", "shopping", "classifieds", "second hand")
	b.Add("finance", "commerce", "finance")
	b.Add("banking", "finance", "banking", "banks")
	b.Add("investing", "finance", "investing", "trading")
	b.Add("insurance", "finance", "insurance", "loans")
	b.Add("jobs", "commerce", "jobs", "employment", "careers", "job seeking")
	b.Add("recruitment", "jobs", "recruitment", "job board")
	b.Add("real-estate", "commerce", "real estate", "property", "housing")

	// ----- Technology (consumer; distinct from the engineering branch).
	b.Add("technology", "content", "technology", "tech")
	b.Add("consumer-tech", "technology", "consumer technology", "gadgets")
	b.Add("smartphones", "consumer-tech", "smartphones", "mobile phones")
	b.Add("software", "technology", "software")
	b.Add("programming", "software", "programming", "developers", "coding")
	b.Add("apps", "software", "apps", "applications")
	b.Add("internet", "technology", "internet", "web")
	b.Add("web-services", "internet", "online services", "email", "search")
	b.Add("hosting", "internet", "web hosting", "domains")

	// ----- Community & tools: low-value/long-tail inventory.
	b.Add("community", "content", "community")
	b.Add("forums", "community", "forum", "forums", "message board")
	b.Add("blogs", "community", "blog", "blogs", "personal site")
	b.Add("social", "community", "social network", "social media")
	b.Add("file-sharing", "community", "downloads", "file sharing")
	b.Add("web-tools", "community", "converters", "calculators", "online tools", "utilities")

	// ----- Brand-unsafe verticals (for the brand-safety analyses).
	b.Add("sensitive", "content", "sensitive content")
	b.Add("adult", "sensitive", "adult", "porn", "xxx", "adult content")
	b.Add("gambling", "sensitive", "gambling")
	b.Add("casino", "gambling", "casino", "slots")
	b.Add("betting", "gambling", "betting", "sportsbook")
	b.Add("poker", "gambling", "poker")
	b.Add("piracy", "sensitive", "piracy", "warez")
	b.Add("torrents", "piracy", "torrents", "p2p downloads")
	b.Add("violence", "sensitive", "violence", "gore", "shock content")
	b.Add("weapons", "sensitive", "weapons", "firearms", "guns")

	t, err := b.Build()
	if err != nil {
		// The default taxonomy is static data; a build failure is a
		// programming error, not a runtime condition.
		panic("semsim: default taxonomy invalid: " + err.Error())
	}
	return t
}
