// Package semsim implements the semantic-similarity machinery behind the
// paper's Context analysis (§4.2, Table 2): a publisher is contextually
// meaningful for a campaign if one of its keywords matches a campaign
// keyword exactly, or one of its topics is semantically close to a
// campaign keyword under the Leacock–Chodorow measure.
//
// The paper computes Leacock–Chodorow over WordNet. WordNet cannot ship
// in an offline, stdlib-only module, so this package embeds a compact
// IS-A taxonomy purpose-built for the display-advertising domain: the
// campaign verticals from Table 1 (research, football, universities,
// telematics) plus the surrounding content categories ad networks
// classify publishers into. The similarity formula is identical:
//
//	sim(a, b) = -log(len(a, b) / (2 * D))
//
// where len is the number of nodes on the shortest IS-A path between the
// concepts (inclusive) and D is the maximum depth of the taxonomy.
package semsim

import (
	"fmt"
	"sort"
	"strings"
)

// Taxonomy is an IS-A concept hierarchy with lemma (word form) indexes.
// It is immutable after Build and safe for concurrent use.
type Taxonomy struct {
	nodes    []node
	byName   map[string]int
	byLemma  map[string][]int
	maxDepth int

	// wordMemo and conceptMemo cache WordSimilarity / Similarity
	// results (see memo.go): the context analysis re-scores the same
	// topic/keyword pairs across thousands of publishers, and the
	// taxonomy's immutability means a computed pair never invalidates.
	wordMemo    pairMemo
	conceptMemo pairMemo
}

type node struct {
	name   string
	parent int // -1 for root
	depth  int // root = 1, matching the WordNet convention where D counts nodes
	lemmas []string
}

// TaxonomyBuilder accumulates concepts for a Taxonomy.
type TaxonomyBuilder struct {
	nodes  []node
	byName map[string]int
	err    error
}

// NewTaxonomyBuilder returns a builder with the given root concept.
func NewTaxonomyBuilder(root string, rootLemmas ...string) *TaxonomyBuilder {
	b := &TaxonomyBuilder{byName: map[string]int{}}
	b.nodes = append(b.nodes, node{name: root, parent: -1, depth: 1, lemmas: normalizeLemmas(rootLemmas)})
	b.byName[root] = 0
	return b
}

// Add registers concept name as a child of parent with the given lemmas.
// Errors (unknown parent, duplicate name) are deferred to Build.
func (b *TaxonomyBuilder) Add(name, parent string, lemmas ...string) *TaxonomyBuilder {
	if b.err != nil {
		return b
	}
	if _, dup := b.byName[name]; dup {
		b.err = fmt.Errorf("semsim: duplicate concept %q", name)
		return b
	}
	pi, ok := b.byName[parent]
	if !ok {
		b.err = fmt.Errorf("semsim: unknown parent %q for concept %q", parent, name)
		return b
	}
	b.byName[name] = len(b.nodes)
	b.nodes = append(b.nodes, node{
		name:   name,
		parent: pi,
		depth:  b.nodes[pi].depth + 1,
		lemmas: normalizeLemmas(lemmas),
	})
	return b
}

// Build finalises the taxonomy.
func (b *TaxonomyBuilder) Build() (*Taxonomy, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &Taxonomy{
		nodes:   b.nodes,
		byName:  b.byName,
		byLemma: map[string][]int{},
	}
	for i, n := range b.nodes {
		if n.depth > t.maxDepth {
			t.maxDepth = n.depth
		}
		for _, l := range n.lemmas {
			t.byLemma[l] = append(t.byLemma[l], i)
		}
		// The concept name itself is also a lemma.
		nm := normalize(n.name)
		if !containsInt(t.byLemma[nm], i) {
			t.byLemma[nm] = append(t.byLemma[nm], i)
		}
	}
	return t, nil
}

// MaxDepth returns D, the maximum node depth (root = 1).
func (t *Taxonomy) MaxDepth() int { return t.maxDepth }

// NumConcepts returns the number of concepts.
func (t *Taxonomy) NumConcepts() int { return len(t.nodes) }

// Concepts returns all concept names, sorted.
func (t *Taxonomy) Concepts() []string {
	out := make([]string, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n.name)
	}
	sort.Strings(out)
	return out
}

// LookupLemma returns the concepts a word form maps to, or nil if the
// word is not in the taxonomy's vocabulary. Matching is case- and
// whitespace-insensitive.
func (t *Taxonomy) LookupLemma(word string) []string {
	idxs := t.byLemma[normalize(word)]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]string, len(idxs))
	for i, idx := range idxs {
		out[i] = t.nodes[idx].name
	}
	return out
}

// HasConcept reports whether the taxonomy contains the named concept.
func (t *Taxonomy) HasConcept(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// pathLen returns the number of nodes on the shortest path between
// concepts a and b through their lowest common ancestor (inclusive of
// both endpoints), the WordNet "len" used by Leacock–Chodorow.
func (t *Taxonomy) pathLen(a, b int) int {
	// Walk both nodes to the root, recording depths; classic LCA by
	// depth-levelling.
	x, y := a, b
	for t.nodes[x].depth > t.nodes[y].depth {
		x = t.nodes[x].parent
	}
	for t.nodes[y].depth > t.nodes[x].depth {
		y = t.nodes[y].parent
	}
	for x != y {
		x = t.nodes[x].parent
		y = t.nodes[y].parent
	}
	lca := x
	edges := (t.nodes[a].depth - t.nodes[lca].depth) + (t.nodes[b].depth - t.nodes[lca].depth)
	return edges + 1 // nodes = edges + 1
}

func normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

func normalizeLemmas(ls []string) []string {
	out := make([]string, 0, len(ls))
	for _, l := range ls {
		out = append(out, normalize(l))
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
