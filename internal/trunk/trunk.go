// Package trunk defines the wire protocol the edge gateway
// (internal/gateway) speaks to the collector's /trunk endpoint: a small
// pool of persistent WebSocket connections multiplexing every beacon
// session a gateway terminates. Each WebSocket binary message is a
// batch of length-prefixed frames; each frame names a logical stream
// (one per beacon session) so a single trunk carries thousands of
// sessions without per-session sockets.
//
// The protocol is deliberately asymmetric about reliability. Open and
// Event frames are advisory — they let the collector watch stream
// liveness but carry no accounting state, so losing them to a trunk
// failure costs nothing. The Commit frame is the unit of record: it is
// self-contained (full payload, connection facts, measured exposure,
// gateway trace stages), so the gateway can replay an unacknowledged
// commit on any trunk, to a freshly restarted collector, with no
// per-stream state transfer. Delivery is at-least-once; the collector
// deduplicates retransmissions by stream ID and, across its own
// restarts, by the impression nonce every gatewayed payload carries.
//
// Frames encode as [type byte][uvarint stream][fields], strings as
// uvarint-length-prefixed bytes, and batches as a concatenation of
// uvarint-length-prefixed frames.
package trunk

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Version is the trunk protocol version carried in the Hello frame.
const Version = 1

// TokenHeader is the HTTP header a gateway presents during the trunk
// handshake when the collector requires a shared admission token.
const TokenHeader = "X-Adaudit-Trunk-Token"

// Type discriminates trunk frames.
type Type byte

const (
	// Hello is the first frame on a fresh trunk: protocol version and
	// the gateway's identity (gateway → collector).
	Hello Type = 1
	// Open announces a new beacon stream: remote address, connection
	// time and the initial payload. Advisory (gateway → collector).
	Open Type = 2
	// Event relays one in-session interaction update. Advisory
	// (gateway → collector).
	Event Type = 3
	// Commit closes a stream's accounting: the full final payload plus
	// the connection-derived facts the gateway measured. The only frame
	// with delivery guarantees (gateway → collector, at-least-once).
	Commit Type = 4
	// Ack confirms a Commit was durably ingested (collector → gateway).
	Ack Type = 5
	// Reject refuses a Commit permanently — replaying it cannot succeed
	// (collector → gateway).
	Reject Type = 6
)

// String names the frame type for logs and metrics labels.
func (t Type) String() string {
	switch t {
	case Hello:
		return "hello"
	case Open:
		return "open"
	case Event:
		return "event"
	case Commit:
		return "commit"
	case Ack:
		return "ack"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("type-%d", byte(t))
}

// Stage is one gateway-measured trace stage riding a Commit frame:
// the offset is measured from the beacon's stamped send time, the same
// origin the collector's adopted trace uses.
type Stage struct {
	Name   string
	Offset time.Duration
}

// Frame is one decoded trunk frame. Fields beyond Type and Stream are
// populated per type; unused fields are zero.
type Frame struct {
	Type   Type
	Stream uint64

	// Hello.
	Version   int
	GatewayID string

	// Open and Commit: the connection-derived facts.
	RemoteIP    string
	ConnectedAt int64 // unix nanoseconds

	// Open: initial payload. Event: the "ev:" update text.
	// Commit: the full final payload (events merged, nonce present).
	Payload string

	// Commit.
	Exposure time.Duration
	Stages   []Stage

	// Reject.
	Reason string
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBody encodes the frame without its batch length prefix.
func appendBody(dst []byte, f Frame) []byte {
	dst = append(dst, byte(f.Type))
	dst = binary.AppendUvarint(dst, f.Stream)
	switch f.Type {
	case Hello:
		dst = binary.AppendUvarint(dst, uint64(f.Version))
		dst = appendString(dst, f.GatewayID)
	case Open:
		dst = appendString(dst, f.RemoteIP)
		dst = binary.AppendVarint(dst, f.ConnectedAt)
		dst = appendString(dst, f.Payload)
	case Event:
		dst = appendString(dst, f.Payload)
	case Commit:
		dst = appendString(dst, f.RemoteIP)
		dst = binary.AppendVarint(dst, f.ConnectedAt)
		dst = binary.AppendVarint(dst, int64(f.Exposure))
		dst = appendString(dst, f.Payload)
		dst = binary.AppendUvarint(dst, uint64(len(f.Stages)))
		for _, st := range f.Stages {
			dst = appendString(dst, st.Name)
			dst = binary.AppendVarint(dst, int64(st.Offset))
		}
	case Ack:
		// Stream only.
	case Reject:
		dst = appendString(dst, f.Reason)
	}
	return dst
}

// uvarintLen returns the encoded size of v under binary.AppendUvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded size of v under binary.AppendVarint
// (zigzag then uvarint).
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

func stringLen(s string) int {
	return uvarintLen(uint64(len(s))) + len(s)
}

// bodySize returns the exact encoded size of f's body — the mirror of
// appendBody, which lets AppendFrame write the length prefix first and
// encode straight into the batch buffer instead of through an
// intermediate allocation.
func bodySize(f Frame) int {
	n := 1 + uvarintLen(f.Stream)
	switch f.Type {
	case Hello:
		n += uvarintLen(uint64(f.Version)) + stringLen(f.GatewayID)
	case Open:
		n += stringLen(f.RemoteIP) + varintLen(f.ConnectedAt) + stringLen(f.Payload)
	case Event:
		n += stringLen(f.Payload)
	case Commit:
		n += stringLen(f.RemoteIP) + varintLen(f.ConnectedAt) +
			varintLen(int64(f.Exposure)) + stringLen(f.Payload) +
			uvarintLen(uint64(len(f.Stages)))
		for _, st := range f.Stages {
			n += stringLen(st.Name) + varintLen(int64(st.Offset))
		}
	case Ack:
		// Stream only.
	case Reject:
		n += stringLen(f.Reason)
	}
	return n
}

// AppendFrame appends f to a batch buffer: a uvarint length prefix
// followed by the frame body. The result of successive AppendFrame
// calls is a valid batch for DecodeBatch.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = binary.AppendUvarint(dst, uint64(bodySize(f)))
	return appendBody(dst, f)
}

// decoder walks one frame body.
type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("trunk: "+format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.pos) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.b)-d.pos)
		return ""
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// maxStages bounds the per-commit stage list so a corrupt length
// cannot drive a huge allocation.
const maxStages = 64

// decodeBody parses one frame body.
func decodeBody(b []byte) (Frame, error) {
	if len(b) == 0 {
		return Frame{}, fmt.Errorf("trunk: empty frame")
	}
	d := &decoder{b: b, pos: 1}
	f := Frame{Type: Type(b[0])}
	f.Stream = d.uvarint()
	switch f.Type {
	case Hello:
		f.Version = int(d.uvarint())
		f.GatewayID = d.string()
	case Open:
		f.RemoteIP = d.string()
		f.ConnectedAt = d.varint()
		f.Payload = d.string()
	case Event:
		f.Payload = d.string()
	case Commit:
		f.RemoteIP = d.string()
		f.ConnectedAt = d.varint()
		f.Exposure = time.Duration(d.varint())
		f.Payload = d.string()
		n := d.uvarint()
		if n > maxStages {
			d.fail("commit carries %d stages (max %d)", n, maxStages)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			name := d.string()
			off := time.Duration(d.varint())
			if d.err == nil {
				f.Stages = append(f.Stages, Stage{Name: name, Offset: off})
			}
		}
	case Ack:
		// Stream only.
	case Reject:
		f.Reason = d.string()
	default:
		return Frame{}, fmt.Errorf("trunk: unknown frame type %d", b[0])
	}
	if d.err != nil {
		return Frame{}, d.err
	}
	if d.pos != len(b) {
		return Frame{}, fmt.Errorf("trunk: %d trailing bytes after %s frame", len(b)-d.pos, f.Type)
	}
	return f, nil
}

// DecodeBatch parses a batch message into its frames. Any framing error
// fails the whole batch: trunks are trusted infrastructure links, so a
// malformed batch means a broken peer, not a hostile client to tolerate.
func DecodeBatch(b []byte) ([]Frame, error) {
	var frames []Frame
	pos := 0
	for pos < len(b) {
		n, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("trunk: truncated batch length at offset %d", pos)
		}
		pos += w
		if n > uint64(len(b)-pos) {
			return nil, fmt.Errorf("trunk: frame length %d exceeds remaining %d bytes", n, len(b)-pos)
		}
		f, err := decodeBody(b[pos : pos+int(n)])
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
		pos += int(n)
	}
	return frames, nil
}
