package trunk

import (
	"reflect"
	"testing"
	"time"
)

func sampleFrames() []Frame {
	return []Frame{
		{Type: Hello, Version: Version, GatewayID: "gw-test-1"},
		{
			Type: Open, Stream: 7, RemoteIP: "203.0.113.9",
			ConnectedAt: 1459242000123456789,
			Payload:     "v=1&cid=c1&crid=cr1&url=http%3A%2F%2Fnews.example%2Fa&ua=sim&n=abc",
		},
		{Type: Event, Stream: 7, Payload: "ev:click"},
		{
			Type: Commit, Stream: 7, RemoteIP: "203.0.113.9",
			ConnectedAt: 1459242000123456789,
			Exposure:    2500 * time.Millisecond,
			Payload:     "v=1&cid=c1&crid=cr1&url=http%3A%2F%2Fnews.example%2Fa&ua=sim&n=abc&ev=click",
			Stages: []Stage{
				{Name: "gateway_recv", Offset: 3 * time.Millisecond},
				{Name: "trunk_forward", Offset: 9 * time.Millisecond},
			},
		},
		{Type: Ack, Stream: 7},
		{Type: Reject, Stream: 9, Reason: "payload: bad campaign"},
		// Negative ConnectedAt and zero-value strings must survive too.
		{Type: Commit, Stream: 0, ConnectedAt: -5, Exposure: 0, Payload: ""},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	want := sampleFrames()
	var batch []byte
	for _, f := range want {
		batch = AppendFrame(batch, f)
	}
	got, err := DecodeBatch(batch)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("frame %d (%s): got %+v want %+v", i, want[i].Type, got[i], want[i])
		}
	}
}

func TestSingleFrameBatches(t *testing.T) {
	for _, f := range sampleFrames() {
		got, err := DecodeBatch(AppendFrame(nil, f))
		if err != nil {
			t.Fatalf("%s: %v", f.Type, err)
		}
		if len(got) != 1 || !reflect.DeepEqual(got[0], f) {
			t.Errorf("%s: got %+v want %+v", f.Type, got, f)
		}
	}
}

func TestDecodeBatchEmpty(t *testing.T) {
	frames, err := DecodeBatch(nil)
	if err != nil || len(frames) != 0 {
		t.Fatalf("empty batch: frames=%v err=%v", frames, err)
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	valid := AppendFrame(nil, sampleFrames()[3]) // a Commit with stages
	cases := map[string][]byte{
		"zero-length frame":      {0},
		"truncated batch length": {0x80}, // uvarint continuation with no next byte
		"length beyond buffer":   {10, 1, 2},
		"unknown type":           AppendFrame(nil, Frame{Type: Type(99)}),
		"truncated frame body":   valid[:len(valid)-3],
		"trailing bytes in body": append(append([]byte{}, 3, byte(Ack), 0), 0xFF),
		"string length overrun":  {4, byte(Event), 1, 200, 0},
	}
	for name, b := range cases {
		if _, err := DecodeBatch(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeBatchRejectsHugeStageCount(t *testing.T) {
	// Hand-build a Commit body claiming maxStages+1 stages.
	body := []byte{byte(Commit), 1}
	body = appendString(body, "ip")
	body = append(body, 0, 0)           // ConnectedAt=0, Exposure=0 (varint zeros)
	body = appendString(body, "p")      // payload
	body = append(body, maxStages+1)    // stage count
	batch := append([]byte{byte(len(body))}, body...)
	if _, err := DecodeBatch(batch); err == nil {
		t.Fatal("oversized stage count decoded without error")
	}
}

func TestTruncatedPrefixesAllFail(t *testing.T) {
	// Every strict prefix of a valid single-frame batch must error, not
	// silently decode a partial frame.
	full := AppendFrame(nil, sampleFrames()[3])
	for i := 1; i < len(full); i++ {
		if frames, err := DecodeBatch(full[:i]); err == nil && len(frames) > 0 {
			t.Fatalf("prefix of %d/%d bytes decoded %d frames", i, len(full), len(frames))
		}
	}
}

// TestBodySizeMatchesEncoding pins bodySize to appendBody: AppendFrame
// writes the length prefix before the body, so a drift between the two
// would corrupt every batch. Includes varint edge values (negative,
// zero, multi-byte) beyond what sampleFrames covers.
func TestBodySizeMatchesEncoding(t *testing.T) {
	frames := sampleFrames()
	frames = append(frames,
		Frame{Type: Hello, Stream: 1<<63 - 1, Version: 300, GatewayID: string(make([]byte, 200))},
		Frame{Type: Commit, Stream: 128, ConnectedAt: -1 << 62, Exposure: -time.Hour,
			Payload: string(make([]byte, 1<<14)),
			Stages:  []Stage{{Name: "", Offset: -1}, {Name: "x", Offset: 1 << 40}}},
		Frame{Type: Reject, Reason: ""},
	)
	for _, f := range frames {
		if got, want := bodySize(f), len(appendBody(nil, f)); got != want {
			t.Errorf("%s: bodySize=%d, encoded body=%d bytes", f.Type, got, want)
		}
	}
}
