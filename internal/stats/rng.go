// Package stats provides the deterministic statistical substrate used by
// the adaudit simulator and analyses: seeded random number generation,
// heavy-tailed samplers (Zipf, Pareto, log-normal), quantile estimation,
// logarithmic bucketing, histograms and set (Venn) accounting.
//
// Every stochastic component in adaudit draws from a stats.RNG constructed
// from an explicit seed, so entire campaign simulations replay bit-for-bit.
package stats

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random number generator. It wraps math/rand with
// an explicit seed and adds the derived-stream and distribution helpers the
// simulator needs. RNG is not safe for concurrent use; derive one stream
// per goroutine with Fork.
type RNG struct {
	src  *rand.Rand
	seed int64
}

// NewRNG returns a generator seeded with seed. Equal seeds produce equal
// streams across runs and platforms.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the generator was constructed with.
func (r *RNG) Seed() int64 { return r.seed }

// Fork derives an independent generator from this one's seed and a label.
// Forking is stable: the same (seed, label) pair always yields the same
// stream, regardless of how much of the parent stream has been consumed.
// This keeps subsystems (publisher universe, user fleet, delivery, ...)
// decoupled: adding draws to one does not perturb the others.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(r.seed))
	h.Write(b[:])
	h.Write([]byte(label))
	return NewRNG(int64(h.Sum64()))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 { return r.src.Int63n(n) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint32 returns a uniform 32-bit value.
func (r *RNG) Uint32() uint32 { return r.src.Uint32() }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Bool returns true with probability p. p outside [0,1] saturates.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *RNG) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 { return r.src.ExpFloat64() * mean }

// LogNormal returns a log-normally distributed value with the given
// location mu and scale sigma of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Pareto returns a Pareto(alpha)-distributed value with minimum xm.
// Smaller alpha means a heavier tail; alpha must be > 0.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of xs. It panics if xs is empty.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// WeightedPick returns an index into weights chosen with probability
// proportional to its weight. Non-positive weights are treated as zero.
// It panics if the total weight is not positive.
func WeightedPick(r *RNG, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: WeightedPick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
