package stats

import "testing"

func BenchmarkZipfRank(b *testing.B) {
	z, err := NewZipf(NewRNG(1), 1.05, 10_000_000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		z.Rank()
	}
}

func BenchmarkAliasSample(b *testing.B) {
	rng := NewRNG(1)
	weights := make([]float64, 150_000)
	for i := range weights {
		weights[i] = rng.Float64() + 0.01
	}
	s, err := NewAliasSampler(rng, weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

func BenchmarkAliasBuild150K(b *testing.B) {
	rng := NewRNG(1)
	weights := make([]float64, 150_000)
	for i := range weights {
		weights[i] = rng.Float64() + 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAliasSampler(rng, weights); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantile(b *testing.B) {
	rng := NewRNG(2)
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantile(xs, 0.5)
	}
}

func BenchmarkPareto(b *testing.B) {
	rng := NewRNG(3)
	for i := 0; i < b.N; i++ {
		rng.Pareto(1, 1.25)
	}
}
