package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogBucketsRejectsBadParams(t *testing.T) {
	if _, err := NewLogBuckets(1, 100); err == nil {
		t.Fatal("expected error for base=1")
	}
	if _, err := NewLogBuckets(10, 0.5); err == nil {
		t.Fatal("expected error for max<1")
	}
}

func TestLogBucketsIndexBase10(t *testing.T) {
	lb, err := NewLogBuckets(10, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, {9, 0}, {9.999, 0},
		{10, 1}, {99, 1},
		{100, 2}, {999, 2},
		{1000, 3},
		{50_000, 4},
		{999_999, 5},
		{1_000_000, 6},
		{9_999_999, 6},
		{10_000_000, 7},
		{1e12, 7}, // overflow bucket
	}
	for _, c := range cases {
		if got := lb.Index(c.v); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLogBucketsBoundariesConsistent(t *testing.T) {
	err := quick.Check(func(raw uint32) bool {
		v := float64(raw%100_000_000) + 1
		lb, err := NewLogBuckets(10, 10_000_000)
		if err != nil {
			return false
		}
		i := lb.Index(v)
		if i < 0 || i >= lb.NumBuckets() {
			return false
		}
		// v must lie below the bucket's upper bound...
		if v >= lb.UpperBound(i) {
			return false
		}
		// ...and at or above the previous bucket's upper bound.
		if i > 0 && v < lb.UpperBound(i-1) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogBucketsLabels(t *testing.T) {
	lb, err := NewLogBuckets(10, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := lb.Label(0); got != "[1, 10)" {
		t.Fatalf("Label(0) = %q", got)
	}
	if got := lb.Label(4); got != "[10K, 100K)" {
		t.Fatalf("Label(4) = %q", got)
	}
	last := lb.NumBuckets() - 1
	if got := lb.Label(last); got != "[10M, inf)" {
		t.Fatalf("Label(%d) = %q", last, got)
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	lb, _ := NewLogBuckets(10, 1_000_000)
	h := NewHistogram(lb)
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		h.Observe(r.Pareto(1, 0.8))
	}
	var sum float64
	for i := 0; i < lb.NumBuckets(); i++ {
		sum += h.Fraction(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v, want 1", sum)
	}
	if h.Total != 10000 {
		t.Fatalf("Total = %d, want 10000", h.Total)
	}
}

func TestHistogramObserveN(t *testing.T) {
	lb, _ := NewLogBuckets(10, 1000)
	h := NewHistogram(lb)
	h.ObserveN(50, 7)
	if h.Counts[lb.Index(50)] != 7 || h.Total != 7 {
		t.Fatalf("ObserveN miscounted: counts=%v total=%d", h.Counts, h.Total)
	}
}

func TestCumulativeFractionBelow(t *testing.T) {
	lb, _ := NewLogBuckets(10, 10_000_000)
	h := NewHistogram(lb)
	// 80 observations below 10K, 20 above.
	h.ObserveN(5000, 80)
	h.ObserveN(1_000_000, 20)
	got := h.CumulativeFractionBelow(10_000)
	if math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("CumulativeFractionBelow(10K) = %v, want 0.8", got)
	}
	if got := h.CumulativeFractionBelow(1); got != 0 {
		t.Fatalf("CumulativeFractionBelow(1) = %v, want 0", got)
	}
	empty := NewHistogram(lb)
	if got := empty.CumulativeFractionBelow(100); got != 0 {
		t.Fatalf("empty histogram fraction = %v, want 0", got)
	}
}
