package stats

import (
	"math"
	"sort"
	"time"
)

// Median returns the median of xs, interpolating between the two middle
// elements for even lengths. It returns NaN for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics (type-7 estimator, the R and
// NumPy default). It returns NaN for an empty slice and clamps q to [0,1].
// xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is like Quantile but requires xs to already be sorted
// ascending, avoiding the copy and sort.
func QuantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return quantileSorted(xs, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MedianDurations returns the median of ds. It returns 0 for an empty
// slice. ds is not modified.
func MedianDurations(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(Median(xs))
}

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (denominator n-1).
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Summary holds the five-number summary plus mean of a sample.
type Summary struct {
	N                int
	Min, P25, Median float64
	P75, Max         float64
	Mean             float64
}

// Summarize computes a Summary of xs. Zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	return summarizeMean(sorted, Mean(xs))
}

// SummarizeInPlace is Summarize without the defensive copy: xs is
// sorted in place. The mean is taken over the original element order
// before sorting, so the result is bit-identical to Summarize on the
// same sample (float addition is order-sensitive). For callers that
// own the buffer — hot paths recycling sample scratch.
func SummarizeInPlace(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return summarizeMean(xs, Mean(xs))
}

// summarizeMean sorts xs in place and assembles the Summary around the
// pre-computed mean.
func summarizeMean(xs []float64, mean float64) Summary {
	sort.Float64s(xs)
	return Summary{
		N:      len(xs),
		Min:    xs[0],
		P25:    quantileSorted(xs, 0.25),
		Median: quantileSorted(xs, 0.5),
		P75:    quantileSorted(xs, 0.75),
		Max:    xs[len(xs)-1],
		Mean:   mean,
	}
}
