package stats

import (
	"fmt"
	"math"
)

// LogBuckets partitions the positive integers into logarithmic buckets
// [1, base), [base, base^2), ... as used by the paper's Figure 2 to bin
// publishers by Alexa rank. Values below 1 fall into bucket 0; values at
// or beyond the last boundary fall into the final overflow bucket.
type LogBuckets struct {
	base       float64
	boundaries []float64 // ascending upper bounds, exclusive
}

// NewLogBuckets returns buckets with the given base covering [1, max].
// It returns an error if base <= 1 or max < 1.
func NewLogBuckets(base float64, max float64) (*LogBuckets, error) {
	if base <= 1 {
		return nil, fmt.Errorf("stats: log bucket base must be > 1, got %v", base)
	}
	if max < 1 {
		return nil, fmt.Errorf("stats: log bucket max must be >= 1, got %v", max)
	}
	lb := &LogBuckets{base: base}
	for b := base; b/base < max; b *= base {
		lb.boundaries = append(lb.boundaries, b)
	}
	return lb, nil
}

// NumBuckets returns the number of buckets, including the overflow bucket.
func (lb *LogBuckets) NumBuckets() int { return len(lb.boundaries) + 1 }

// Index returns the bucket index for v.
func (lb *LogBuckets) Index(v float64) int {
	if v < 1 {
		return 0
	}
	// log-based jump, then linear fixup to dodge float edge cases.
	i := int(math.Log(v) / math.Log(lb.base))
	if i < 0 {
		i = 0
	}
	if i > len(lb.boundaries) {
		i = len(lb.boundaries)
	}
	for i > 0 && v < lb.boundaries[i-1] {
		i--
	}
	for i < len(lb.boundaries) && v >= lb.boundaries[i] {
		i++
	}
	return i
}

// Label returns a human-readable range label for bucket i, e.g. "[1, 10)".
func (lb *LogBuckets) Label(i int) string {
	lower := 1.0
	if i > 0 {
		lower = lb.boundaries[i-1]
	}
	if i >= len(lb.boundaries) {
		return fmt.Sprintf("[%s, inf)", compactNumber(lower))
	}
	return fmt.Sprintf("[%s, %s)", compactNumber(lower), compactNumber(lb.boundaries[i]))
}

// UpperBound returns the exclusive upper bound of bucket i, or +Inf for
// the overflow bucket.
func (lb *LogBuckets) UpperBound(i int) float64 {
	if i >= len(lb.boundaries) {
		return math.Inf(1)
	}
	return lb.boundaries[i]
}

func compactNumber(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%gB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%gK", v/1e3)
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Histogram counts observations in a LogBuckets partition.
type Histogram struct {
	Buckets *LogBuckets
	Counts  []int64
	Total   int64
}

// NewHistogram returns an empty histogram over lb.
func NewHistogram(lb *LogBuckets) *Histogram {
	return &Histogram{Buckets: lb, Counts: make([]int64, lb.NumBuckets())}
}

// Observe adds v to the histogram.
func (h *Histogram) Observe(v float64) {
	h.Counts[h.Buckets.Index(v)]++
	h.Total++
}

// ObserveN adds v to the histogram n times.
func (h *Histogram) ObserveN(v float64, n int64) {
	h.Counts[h.Buckets.Index(v)] += n
	h.Total += n
}

// Fraction returns the fraction of observations in bucket i, or 0 if the
// histogram is empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// CumulativeFractionBelow returns the fraction of observations in buckets
// whose entire range lies below limit (i.e. upper bound <= limit).
func (h *Histogram) CumulativeFractionBelow(limit float64) float64 {
	if h.Total == 0 {
		return 0
	}
	var n int64
	for i, c := range h.Counts {
		if h.Buckets.UpperBound(i) <= limit {
			n += c
		}
	}
	return float64(n) / float64(h.Total)
}
