package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestForkStability(t *testing.T) {
	parent := NewRNG(7)
	// Consume some of the parent stream; forks must not be affected.
	for i := 0; i < 123; i++ {
		parent.Uint64()
	}
	f1 := parent.Fork("publishers")
	f2 := NewRNG(7).Fork("publishers")
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatalf("forked streams diverged at draw %d", i)
		}
	}
}

func TestForkLabelsIndependent(t *testing.T) {
	r := NewRNG(7)
	a := r.Fork("a")
	b := r.Fork("b")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different fork labels produced identical streams")
	}
}

func TestBoolSaturation(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := NewRNG(3)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	xm, alpha := 1.0, 1.5
	var below, count int
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto sample %v below minimum %v", v, xm)
		}
		count++
		if v < 2*xm {
			below++
		}
	}
	// P(X < 2xm) = 1 - 2^-alpha ≈ 0.6464 for alpha=1.5.
	want := 1 - math.Pow(2, -alpha)
	got := float64(below) / float64(count)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("Pareto CDF at 2xm = %v, want ~%v", got, want)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(9)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(1.0, 0.5)
	}
	med := Median(xs)
	want := math.Exp(1.0)
	if math.Abs(med-want)/want > 0.03 {
		t.Fatalf("log-normal median = %v, want ~%v", med, want)
	}
}

func TestWeightedPick(t *testing.T) {
	r := NewRNG(11)
	weights := []float64{1, 0, 3, -2, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[WeightedPick(r, weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	if counts[3] != 0 {
		t.Fatalf("negative-weight index picked %d times", counts[3])
	}
	// Expect proportions ~ 1:3:6 over total 10.
	for i, want := range map[int]float64{0: 0.1, 2: 0.3, 4: 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("index %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive total weight")
		}
	}()
	WeightedPick(NewRNG(1), []float64{0, -1})
}

func TestPick(t *testing.T) {
	r := NewRNG(2)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick over 100 draws covered %d/3 elements", len(seen))
	}
}
