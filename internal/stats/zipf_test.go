package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfRejectsBadParams(t *testing.T) {
	r := NewRNG(1)
	if _, err := NewZipf(r, 0, 10); err == nil {
		t.Fatal("expected error for s=0")
	}
	if _, err := NewZipf(r, -1, 10); err == nil {
		t.Fatal("expected error for s<0")
	}
	if _, err := NewZipf(r, 1, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestZipfRanksInRange(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint16) bool {
		n := uint64(nRaw)%100000 + 1
		z, err := NewZipf(NewRNG(seed), 1.1, n)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			if z.Rank() >= n {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZipfHeadFrequencies(t *testing.T) {
	// For s=1 over a small n, rank 0 should be about twice as likely as
	// rank 1 and three times as likely as rank 2.
	z, err := NewZipf(NewRNG(17), 1.0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		r := z.Rank()
		if r < 3 {
			counts[r]++
		}
	}
	r01 := float64(counts[0]) / float64(counts[1])
	r02 := float64(counts[0]) / float64(counts[2])
	if math.Abs(r01-2) > 0.15 {
		t.Fatalf("P(0)/P(1) = %v, want ~2", r01)
	}
	if math.Abs(r02-3) > 0.25 {
		t.Fatalf("P(0)/P(2) = %v, want ~3", r02)
	}
}

func TestZipfSmallNExactCoverage(t *testing.T) {
	z, err := NewZipf(NewRNG(3), 1.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		seen[z.Rank()]++
	}
	for k := uint64(0); k < 5; k++ {
		if seen[k] == 0 {
			t.Fatalf("rank %d never sampled", k)
		}
	}
	// Monotone decreasing frequency.
	for k := uint64(1); k < 5; k++ {
		if seen[k] > seen[k-1] {
			t.Fatalf("rank %d sampled more often (%d) than rank %d (%d)",
				k, seen[k], k-1, seen[k-1])
		}
	}
}

func TestZipfTailSampledForLargeN(t *testing.T) {
	// n far beyond the exact head: tail ranks must appear.
	z, err := NewZipf(NewRNG(23), 0.9, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tail := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if z.Rank() >= zipfHeadSize {
			tail++
		}
	}
	if tail == 0 {
		t.Fatal("no tail ranks sampled for n=10M")
	}
	if tail == n {
		t.Fatal("no head ranks sampled for n=10M")
	}
}

func TestZipfDeterminism(t *testing.T) {
	z1, _ := NewZipf(NewRNG(77), 1.05, 1_000_000)
	z2, _ := NewZipf(NewRNG(77), 1.05, 1_000_000)
	for i := 0; i < 1000; i++ {
		if z1.Rank() != z2.Rank() {
			t.Fatalf("zipf streams diverged at draw %d", i)
		}
	}
}
