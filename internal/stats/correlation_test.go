package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpearmanPerfectMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 100, 1000, 10000, 100000} // monotone, nonlinear
	rho, err := SpearmanRho(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("rho = %v, want 1", rho)
	}
	down := []float64{5, 4, 3, 2, 1}
	rho, err = SpearmanRho(xs, down)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho+1) > 1e-12 {
		t.Fatalf("rho = %v, want -1", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	rho, err := SpearmanRho(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("tied identical samples rho = %v, want 1", rho)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := SpearmanRho([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SpearmanRho([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single observation accepted")
	}
	if _, err := SpearmanRho([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant input accepted")
	}
}

func TestPearsonLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
}

// Properties: rho is symmetric, bounded, and invariant under monotone
// transforms of either input.
func TestSpearmanProperties(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := NewRNG(seed)
		n := rng.Intn(30) + 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		rho, err := SpearmanRho(xs, ys)
		if err != nil {
			return true // constant inputs are valid rejections
		}
		if rho < -1-1e-9 || rho > 1+1e-9 {
			return false
		}
		sym, err := SpearmanRho(ys, xs)
		if err != nil || math.Abs(sym-rho) > 1e-9 {
			return false
		}
		// Monotone transform of xs leaves ranks unchanged.
		txs := make([]float64, n)
		for i, x := range xs {
			txs[i] = math.Exp(x)
		}
		trho, err := SpearmanRho(txs, ys)
		return err == nil && math.Abs(trho-rho) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
