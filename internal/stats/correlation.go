package stats

import (
	"fmt"
	"math"
	"sort"
)

// SpearmanRho computes Spearman's rank correlation coefficient between
// two equal-length samples, with average ranks for ties. The paper's
// Figure 2 claim — higher CPM does NOT buy more popular publishers — is
// quantified as a non-positive rank correlation between campaign CPMs
// and their top-rank delivery shares.
func SpearmanRho(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: spearman inputs differ in length: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: spearman needs at least 2 observations")
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return pearson(rx, ry)
}

// ranks returns average ranks (1-based) of xs, resolving ties to the
// mean rank of the tied group.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for positions i..j (1-based).
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// pearson computes the Pearson correlation of two equal-length samples.
func pearson(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: correlation undefined for constant input")
	}
	_ = n
	return sxy / math.Sqrt(sxx*syy), nil
}

// Pearson computes the Pearson product-moment correlation coefficient.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: pearson inputs differ in length: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: pearson needs at least 2 observations")
	}
	return pearson(xs, ys)
}
