package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVennOf(t *testing.T) {
	a := SetOf([]string{"x", "y", "z"})
	b := SetOf([]string{"y", "z", "w", "v"})
	v := VennOf(a, b)
	if v.OnlyA != 1 || v.OnlyB != 2 || v.Both != 2 {
		t.Fatalf("VennOf = %+v, want {1 2 2}", v)
	}
	if v.SizeA() != 3 || v.SizeB() != 4 || v.Union() != 5 {
		t.Fatalf("sizes wrong: %+v", v)
	}
}

func TestVennFractions(t *testing.T) {
	v := Venn{OnlyA: 57, OnlyB: 10, Both: 43}
	if got := v.FractionMissedByB(); math.Abs(got-0.57) > 1e-12 {
		t.Fatalf("FractionMissedByB = %v, want 0.57", got)
	}
	want := 10.0 / 53.0
	if got := v.FractionMissedByA(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FractionMissedByA = %v, want %v", got, want)
	}
	if got := v.Jaccard(); math.Abs(got-43.0/110.0) > 1e-12 {
		t.Fatalf("Jaccard = %v", got)
	}
}

func TestVennEmptySets(t *testing.T) {
	v := VennOf(nil, nil)
	if v != (Venn{}) {
		t.Fatalf("VennOf(nil,nil) = %+v", v)
	}
	if v.FractionMissedByB() != 0 || v.FractionMissedByA() != 0 || v.Jaccard() != 0 {
		t.Fatal("empty Venn fractions must be 0")
	}
}

// Property: the Venn partition is exact — sizes recombine to the input
// set cardinalities, and the partition is symmetric under swapping.
func TestVennPartitionProperty(t *testing.T) {
	err := quick.Check(func(as, bs []string) bool {
		a, b := SetOf(as), SetOf(bs)
		v := VennOf(a, b)
		if v.SizeA() != len(a) || v.SizeB() != len(b) {
			return false
		}
		sw := VennOf(b, a)
		return sw.OnlyA == v.OnlyB && sw.OnlyB == v.OnlyA && sw.Both == v.Both
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetOfDeduplicates(t *testing.T) {
	s := SetOf([]string{"a", "a", "b"})
	if len(s) != 2 {
		t.Fatalf("SetOf kept duplicates: %v", s)
	}
}
