package stats

// Venn describes the two-set Venn partition of the paper's Figure 1:
// items reported only by the auditing methodology, items reported only by
// the vendor, and items reported by both.
type Venn struct {
	OnlyA int // exclusively in A (e.g. audit-only publishers)
	OnlyB int // exclusively in B (e.g. vendor-only publishers)
	Both  int // in both
}

// VennOf computes the Venn partition of two string sets.
func VennOf(a, b map[string]struct{}) Venn {
	var v Venn
	for k := range a {
		if _, ok := b[k]; ok {
			v.Both++
		} else {
			v.OnlyA++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			v.OnlyB++
		}
	}
	return v
}

// SizeA returns |A| = OnlyA + Both.
func (v Venn) SizeA() int { return v.OnlyA + v.Both }

// SizeB returns |B| = OnlyB + Both.
func (v Venn) SizeB() int { return v.OnlyB + v.Both }

// Union returns |A ∪ B|.
func (v Venn) Union() int { return v.OnlyA + v.OnlyB + v.Both }

// FractionMissedByB returns the fraction of A's items absent from B —
// the paper's headline "AdWords did not report 57% of publishers" metric,
// computed as OnlyA / |A|. It returns 0 when A is empty.
func (v Venn) FractionMissedByB() float64 {
	if v.SizeA() == 0 {
		return 0
	}
	return float64(v.OnlyA) / float64(v.SizeA())
}

// FractionMissedByA returns the fraction of B's items absent from A.
// In the paper this is the audit-side measurement loss (footnote: the
// methodology failed to log 16.5% of the publishers).
func (v Venn) FractionMissedByA() float64 {
	if v.SizeB() == 0 {
		return 0
	}
	return float64(v.OnlyB) / float64(v.SizeB())
}

// Jaccard returns |A ∩ B| / |A ∪ B|, or 0 for two empty sets.
func (v Venn) Jaccard() float64 {
	if v.Union() == 0 {
		return 0
	}
	return float64(v.Both) / float64(v.Union())
}

// SetOf builds a string set from a slice, deduplicating elements.
func SetOf(items []string) map[string]struct{} {
	s := make(map[string]struct{}, len(items))
	for _, it := range items {
		s[it] = struct{}{}
	}
	return s
}
