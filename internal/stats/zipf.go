package stats

import (
	"fmt"
	"math"
)

// Zipf samples ranks from a bounded Zipf distribution: P(rank = k) is
// proportional to 1/(k+1)^s for k in [0, n). It is the popularity model
// behind the synthetic publisher universe (Alexa-like ranking) and the
// per-user repeat-exposure tail.
//
// The implementation uses inversion over the analytic approximation of the
// generalized harmonic CDF with a small correction table for the head,
// which keeps construction O(head) and sampling O(log head) worst case
// while matching the exact distribution to within float tolerance.
type Zipf struct {
	rng *RNG
	s   float64
	n   uint64

	// headCDF holds the exact cumulative probability of the first
	// min(n, zipfHeadSize) ranks; the tail is sampled by inverting the
	// integral approximation of sum 1/k^s.
	headCDF  []float64
	headMass float64
	tailNorm float64
}

const zipfHeadSize = 4096

// NewZipf returns a Zipf sampler over ranks [0, n) with exponent s.
// It returns an error if s <= 0 or n == 0.
func NewZipf(rng *RNG, s float64, n uint64) (*Zipf, error) {
	if s <= 0 {
		return nil, fmt.Errorf("stats: zipf exponent must be > 0, got %v", s)
	}
	if n == 0 {
		return nil, fmt.Errorf("stats: zipf range must be non-empty")
	}
	z := &Zipf{rng: rng, s: s, n: n}
	head := int(n)
	if head > zipfHeadSize {
		head = zipfHeadSize
	}
	z.headCDF = make([]float64, head)
	var sum float64
	for k := 0; k < head; k++ {
		sum += math.Pow(float64(k+1), -s)
		z.headCDF[k] = sum
	}
	z.headMass = sum
	total := sum
	if uint64(head) < n {
		tail := z.harmonicTail(float64(head)+0.5, float64(n)+0.5)
		z.tailNorm = tail
		total += tail
	}
	// Normalize so headMass and tailNorm are probabilities.
	z.headMass /= total
	z.tailNorm /= total
	for k := range z.headCDF {
		z.headCDF[k] /= total
	}
	return z, nil
}

// harmonicTail approximates sum_{k=a..b} k^-s by the integral of x^-s.
func (z *Zipf) harmonicTail(a, b float64) float64 {
	if z.s == 1 {
		return math.Log(b) - math.Log(a)
	}
	return (math.Pow(b, 1-z.s) - math.Pow(a, 1-z.s)) / (1 - z.s)
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() uint64 { return z.n }

// Rank draws a rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Rank() uint64 {
	u := z.rng.Float64()
	if u < z.headMass || uint64(len(z.headCDF)) == z.n {
		// Binary search in the exact head CDF.
		lo, hi := 0, len(z.headCDF)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.headCDF[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint64(lo)
	}
	// Invert the tail integral: find x with Integral(head..x) = v.
	v := u - z.headMass
	a := float64(len(z.headCDF)) + 0.5
	b := float64(z.n) + 0.5
	var x float64
	if z.s == 1 {
		total := math.Log(b) - math.Log(a)
		x = a * math.Exp(v/z.tailNorm*total)
	} else {
		total := math.Pow(b, 1-z.s) - math.Pow(a, 1-z.s)
		x = math.Pow(math.Pow(a, 1-z.s)+v/z.tailNorm*total, 1/(1-z.s))
	}
	k := uint64(x)
	if k < uint64(len(z.headCDF)) {
		k = uint64(len(z.headCDF))
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
