package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median = %v, want 2", got)
	}
}

func TestMedianEvenInterpolates(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestMedianEmpty(t *testing.T) {
	if got := Median(nil); !math.IsNaN(got) {
		t.Fatalf("Median(nil) = %v, want NaN", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 30, 20}
	if got := Quantile(xs, 0); got != 10 {
		t.Fatalf("Q(0) = %v, want 10", got)
	}
	if got := Quantile(xs, 1); got != 30 {
		t.Fatalf("Q(1) = %v, want 30", got)
	}
}

func TestQuantileClamps(t *testing.T) {
	xs := []float64{1, 2}
	if got := Quantile(xs, -3); got != 1 {
		t.Fatalf("Q(-3) = %v, want 1", got)
	}
	if got := Quantile(xs, 7); got != 2 {
		t.Fatalf("Q(7) = %v, want 2", got)
	}
}

// Property: the median always lies between min and max, and is monotone in q.
func TestQuantileProperties(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		min, max := sorted[0], sorted[len(sorted)-1]
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := Quantile(xs, q)
			if v < min || v > max {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.2, 0.5, 0.8} {
			if Quantile(xs, q) != QuantileSorted(sorted, q) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedianDurations(t *testing.T) {
	ds := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if got := MedianDurations(ds); got != 2*time.Second {
		t.Fatalf("MedianDurations = %v, want 2s", got)
	}
	if got := MedianDurations(nil); got != 0 {
		t.Fatalf("MedianDurations(nil) = %v, want 0", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	sd := StdDev(xs)
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(sd-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", sd, want)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Fatalf("StdDev of singleton = %v, want 0", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Fatalf("Mean(nil) = %v, want NaN", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Fatalf("unexpected quartiles: %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatalf("Summarize(nil).N = %d, want 0", empty.N)
	}
}
