package stats

import "fmt"

// AliasSampler draws indexes from a fixed discrete distribution in O(1)
// per sample using Vose's alias method. The delivery simulator uses it
// to pick publishers from 10K-entry weighted inventories tens of
// thousands of times per campaign.
type AliasSampler struct {
	rng   *RNG
	prob  []float64
	alias []int
}

// NewAliasSampler builds a sampler over weights (non-negative, at least
// one positive). Construction is O(n).
func NewAliasSampler(rng *RNG, weights []float64) (*AliasSampler, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: alias sampler needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stats: negative weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: alias sampler needs positive total weight")
	}

	s := &AliasSampler{
		rng:   rng,
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scale weights to mean 1 and split into under/over-full columns.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		// Numerical residue: treat as full.
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s, nil
}

// Sample draws one index.
func (s *AliasSampler) Sample() int {
	i := s.rng.Intn(len(s.prob))
	if s.rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// Len returns the number of categories.
func (s *AliasSampler) Len() int { return len(s.prob) }
