// Package publisher generates the synthetic publisher universe the ad
// network simulator delivers impressions to. It stands in for the Google
// Display Network inventory (2M+ publishers) and the Alexa ranking the
// paper bins publishers by in Figure 2.
//
// Each publisher carries a domain, a global popularity rank (1 = most
// popular, log-uniform across the rank space so every logarithmic rank
// bucket is populated), content topics and keywords drawn from the
// semsim taxonomy, a traffic-quality profile (bot exposure propensity)
// and an anonymity flag modelling Ad Exchange inventory partners that
// appear as "anonymous.google" in vendor reports.
package publisher

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adaudit/internal/semsim"
	"adaudit/internal/stats"
)

// Publisher is one site in the universe.
type Publisher struct {
	// Domain is the registrable domain, e.g. "futbolhoy483.es".
	Domain string
	// Rank is the global popularity rank (1 = most popular), the
	// analogue of the Alexa rank used in Figure 2.
	Rank int
	// Vertical is the taxonomy concept naming the site's primary
	// content vertical (e.g. "football").
	Vertical string
	// Topics are taxonomy concepts describing the content, always
	// including Vertical.
	Topics []string
	// Keywords are word forms (lemmas) the ad network associates with
	// the publisher, the analogue of AdWords' per-placement keywords.
	Keywords []string
	// BotPropensity is the probability that any given impression on
	// this publisher is rendered by data-center automation rather than
	// a human browser.
	BotPropensity float64
	// Anonymous marks Ad Exchange inventory whose identity the vendor
	// masks as "anonymous.google" in campaign reports.
	Anonymous bool
	// BrandUnsafe marks publishers in sensitive verticals (adult,
	// gambling, piracy, ...) — the sites a brand-safety blacklist is
	// supposed to catch.
	BrandUnsafe bool
	// BeaconHostile marks publishers whose page or iframe policies
	// (CSP, sandboxing, aggressive ad wrappers) prevent the injected
	// JavaScript from connecting out. All impressions on such
	// publishers are invisible to the audit — the publisher-correlated
	// component of the paper's 16.5% unlogged-publisher loss.
	BeaconHostile bool
}

// Universe is an immutable set of publishers with topic indexes. Safe
// for concurrent use after construction.
type Universe struct {
	pubs       []Publisher
	byDomain   map[string]int
	byVertical map[string][]int
	taxonomy   *semsim.Taxonomy
}

// Config controls universe generation.
type Config struct {
	Seed int64
	// NumPublishers is the inventory size (default 10000).
	NumPublishers int
	// MaxRank is the bottom of the popularity ranking (default 10M,
	// matching Figure 2's x-axis).
	MaxRank int
	// AnonymousFraction is the fraction of publishers sold as anonymous
	// Ad Exchange inventory (default 0.06).
	AnonymousFraction float64
	// HostileFraction is the fraction of publishers whose embedding
	// policies block the beacon entirely (default 0.12).
	HostileFraction float64
	// Taxonomy supplies content verticals; defaults to
	// semsim.DefaultTaxonomy().
	Taxonomy *semsim.Taxonomy
}

func (c *Config) applyDefaults() {
	if c.NumPublishers == 0 {
		c.NumPublishers = 10000
	}
	if c.MaxRank == 0 {
		c.MaxRank = 10_000_000
	}
	if c.AnonymousFraction == 0 {
		c.AnonymousFraction = 0.06
	}
	if c.HostileFraction == 0 {
		c.HostileFraction = 0.12
	}
	if c.Taxonomy == nil {
		c.Taxonomy = semsim.DefaultTaxonomy()
	}
}

// verticalProfile weights a vertical's share of the inventory and its
// traffic-quality characteristics.
type verticalProfile struct {
	concept string
	// share is the relative inventory share.
	share float64
	// botBase is the baseline bot-traffic propensity for the vertical.
	// The paper's Table 4 found sports/football inventory an order of
	// magnitude more exposed to data-center traffic than research or
	// general inventory; high-demand entertainment verticals attract
	// traffic-sourcing bots.
	botBase float64
	// tlds to draw domains from.
	tlds []string
}

// inventoryProfiles is the vertical mix of the synthetic inventory. The
// shares skew toward the long-tail content that dominates real display
// networks; campaign verticals (research, football, ...) are present in
// proportions that give the 8 paper campaigns realistic inventory pools.
var inventoryProfiles = []verticalProfile{
	{"research", 0.008, 0.010, []string{"es", "org", "edu"}},
	{"universities", 0.006, 0.008, []string{"es", "edu", "org"}},
	{"schools", 0.004, 0.008, []string{"es", "org"}},
	{"online-courses", 0.004, 0.012, []string{"com", "es"}},
	{"physics", 0.002, 0.008, []string{"org", "es"}},
	{"biology", 0.002, 0.008, []string{"org", "es"}},
	{"telematics", 0.003, 0.010, []string{"es", "com"}},
	{"computer-science", 0.004, 0.012, []string{"com", "org"}},
	{"encyclopedias", 0.003, 0.006, []string{"org"}},

	{"football", 0.060, 0.085, []string{"es", "com"}},
	{"basketball", 0.020, 0.060, []string{"es", "com"}},
	{"tennis", 0.012, 0.050, []string{"com", "es"}},
	{"formula1", 0.010, 0.055, []string{"com", "es"}},
	{"cycling", 0.008, 0.040, []string{"es", "com"}},
	{"esports", 0.010, 0.070, []string{"com", "gg"}},

	{"national-politics", 0.025, 0.015, []string{"es", "com"}},
	{"local-news", 0.075, 0.015, []string{"es", "com"}},
	{"markets", 0.015, 0.020, []string{"com", "es"}},
	{"weather", 0.012, 0.010, []string{"com", "es"}},

	{"movies", 0.030, 0.035, []string{"com", "es"}},
	{"television", 0.025, 0.030, []string{"es", "com"}},
	{"streaming", 0.020, 0.050, []string{"com", "to"}},
	{"videogames", 0.030, 0.045, []string{"com", "es"}},
	{"mobile-games", 0.020, 0.050, []string{"com"}},
	{"gossip", 0.022, 0.030, []string{"es", "com"}},
	{"humor", 0.020, 0.040, []string{"com", "es"}},

	{"hotels", 0.020, 0.015, []string{"com", "es"}},
	{"flights", 0.012, 0.015, []string{"com", "es"}},
	{"recipes", 0.040, 0.010, []string{"es", "com"}},
	{"fashion", 0.025, 0.018, []string{"com", "es"}},
	{"fitness", 0.018, 0.015, []string{"com", "es"}},
	{"medicine", 0.015, 0.010, []string{"es", "org"}},
	{"parenting", 0.015, 0.010, []string{"es", "com"}},
	{"decor", 0.015, 0.012, []string{"com", "es"}},
	{"gardening", 0.012, 0.010, []string{"es", "com"}},
	{"cars", 0.022, 0.020, []string{"es", "com"}},

	{"deals", 0.025, 0.030, []string{"com", "es"}},
	{"classifieds", 0.020, 0.020, []string{"es", "com"}},
	{"banking", 0.010, 0.012, []string{"com", "es"}},
	{"investing", 0.012, 0.025, []string{"com"}},
	{"jobs", 0.020, 0.012, []string{"es", "com"}},
	{"real-estate", 0.015, 0.012, []string{"es", "com"}},

	{"smartphones", 0.022, 0.025, []string{"com", "es"}},
	{"programming", 0.015, 0.015, []string{"com", "org", "io"}},
	{"apps", 0.015, 0.030, []string{"com"}},
	{"web-services", 0.012, 0.020, []string{"com"}},

	{"forums", 0.050, 0.035, []string{"com", "es", "net"}},
	{"blogs", 0.095, 0.030, []string{"com", "es", "net"}},
	{"file-sharing", 0.015, 0.080, []string{"com", "net", "to"}},
	{"web-tools", 0.020, 0.060, []string{"com", "net"}},

	// Brand-unsafe inventory exists in the network even if campaigns
	// rarely target it; ads land there through broad matching.
	{"adult", 0.008, 0.090, []string{"com", "xxx"}},
	{"casino", 0.006, 0.100, []string{"com", "net"}},
	{"betting", 0.006, 0.090, []string{"com", "es"}},
	{"torrents", 0.008, 0.110, []string{"net", "to"}},
}

// domain word fragments per vertical for plausible names.
var domainWords = map[string][]string{}

func init() {
	base := map[string][]string{
		"research":          {"ciencia", "research", "investiga", "labs", "descubre"},
		"universities":      {"uni", "campus", "facultad", "estudios", "academia"},
		"schools":           {"cole", "escuela", "aula", "educa"},
		"online-courses":    {"cursos", "aprende", "formacion", "mooc"},
		"physics":           {"fisica", "quantum", "cosmos"},
		"biology":           {"bio", "natura", "genoma"},
		"telematics":        {"redes", "telecom", "telematica", "fibra"},
		"computer-science":  {"informatica", "codigo", "sistemas", "devs"},
		"encyclopedias":     {"wiki", "saber", "enciclo"},
		"football":          {"futbol", "gol", "liga", "balon", "penalti", "fichajes"},
		"basketball":        {"basket", "canasta", "triple"},
		"tennis":            {"tenis", "raqueta", "ace"},
		"formula1":          {"f1", "paddock", "boxes"},
		"cycling":           {"ciclismo", "pedal", "peloton"},
		"esports":           {"esports", "gamers", "arena"},
		"national-politics": {"politica", "congreso", "actualidad"},
		"local-news":        {"diario", "noticias", "gaceta", "heraldo", "cronica"},
		"markets":           {"bolsa", "mercados", "economia"},
		"weather":           {"tiempo", "clima", "meteo"},
		"movies":            {"cine", "pelis", "estrenos"},
		"television":        {"tele", "series", "programas"},
		"streaming":         {"stream", "play", "verahora"},
		"videogames":        {"juegos", "gamer", "consola"},
		"mobile-games":      {"minijuegos", "casualplay"},
		"gossip":            {"corazon", "famosos", "salseo"},
		"humor":             {"risas", "memes", "cachondeo"},
		"hotels":            {"hoteles", "reservas", "escapadas"},
		"flights":           {"vuelos", "billetes", "aero"},
		"recipes":           {"recetas", "cocina", "sabor"},
		"fashion":           {"moda", "estilo", "tendencias"},
		"fitness":           {"fitness", "gym", "entrena"},
		"medicine":          {"salud", "medico", "clinica"},
		"parenting":         {"bebes", "padres", "crianza"},
		"decor":             {"deco", "hogar", "interiores"},
		"gardening":         {"jardin", "huerto", "plantas"},
		"cars":              {"coches", "motor", "ruedas"},
		"deals":             {"ofertas", "chollos", "descuentos"},
		"classifieds":       {"anuncios", "segundamano", "ventas"},
		"banking":           {"banca", "cuentas", "finanzas"},
		"investing":         {"inversion", "trading", "broker"},
		"jobs":              {"empleo", "trabajo", "curro"},
		"real-estate":       {"pisos", "casas", "inmo"},
		"smartphones":       {"moviles", "android", "gadgets"},
		"programming":       {"dev", "code", "stack"},
		"apps":              {"apps", "descargas"},
		"web-services":      {"correo", "buscador", "web"},
		"forums":            {"foro", "debate", "comunidad"},
		"blogs":             {"blog", "bitacora", "rincon"},
		"file-sharing":      {"descargas", "ficheros", "mega"},
		"web-tools":         {"conversor", "calculadora", "utilidades"},
		"adult":             {"hot", "adultos", "xpics"},
		"casino":            {"casino", "slots", "ruleta"},
		"betting":           {"apuestas", "cuotas", "bet"},
		"torrents":          {"torrent", "descargagratis", "pelisgratis"},
	}
	domainWords = base
}

// NewUniverse generates a deterministic publisher universe.
func NewUniverse(cfg Config) (*Universe, error) {
	cfg.applyDefaults()
	if cfg.NumPublishers < len(inventoryProfiles) {
		return nil, fmt.Errorf("publisher: need at least %d publishers, got %d",
			len(inventoryProfiles), cfg.NumPublishers)
	}
	rng := stats.NewRNG(cfg.Seed).Fork("publishers")

	u := &Universe{
		byDomain:   make(map[string]int, cfg.NumPublishers),
		byVertical: map[string][]int{},
		taxonomy:   cfg.Taxonomy,
	}

	weights := make([]float64, len(inventoryProfiles))
	for i, p := range inventoryProfiles {
		weights[i] = p.share
		if !cfg.Taxonomy.HasConcept(p.concept) {
			return nil, fmt.Errorf("publisher: vertical %q missing from taxonomy", p.concept)
		}
	}

	ranks := sampleDistinctRanks(rng, cfg.NumPublishers, cfg.MaxRank)
	for i := 0; i < cfg.NumPublishers; i++ {
		prof := inventoryProfiles[stats.WeightedPick(rng, weights)]
		pub := buildPublisher(rng, cfg, prof, ranks[i], i)
		// Regenerate on (rare) domain collision.
		for _, dup := u.byDomain[pub.Domain]; dup; _, dup = u.byDomain[pub.Domain] {
			pub.Domain = fmt.Sprintf("%s%d.%s", pub.Domain[:strings.Index(pub.Domain, ".")],
				rng.Intn(10), pub.Domain[strings.Index(pub.Domain, ".")+1:])
		}
		u.byDomain[pub.Domain] = len(u.pubs)
		u.byVertical[pub.Vertical] = append(u.byVertical[pub.Vertical], len(u.pubs))
		u.pubs = append(u.pubs, pub)
	}
	return u, nil
}

// sampleDistinctRanks draws n distinct ranks in [1, maxRank],
// log-uniformly so every logarithmic popularity bucket is populated.
func sampleDistinctRanks(rng *stats.RNG, n, maxRank int) []int {
	seen := make(map[int]struct{}, n)
	ranks := make([]int, 0, n)
	logMax := math.Log(float64(maxRank))
	for len(ranks) < n {
		r := int(math.Exp(rng.Float64() * logMax))
		if r < 1 {
			r = 1
		}
		if r > maxRank {
			r = maxRank
		}
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		ranks = append(ranks, r)
	}
	return ranks
}

func buildPublisher(rng *stats.RNG, cfg Config, prof verticalProfile, rank, id int) Publisher {
	words := domainWords[prof.concept]
	word := stats.Pick(rng, words)
	tld := stats.Pick(rng, prof.tlds)
	domain := fmt.Sprintf("%s%d.%s", word, 100+rng.Intn(900), tld)

	topics := []string{prof.concept}
	// Secondary topic: occasionally another vertical (share-weighted so
	// common verticals appear as secondaries more often), making
	// contextual matching non-trivial without flooding niche verticals
	// with accidental matches.
	if rng.Bool(0.15) {
		weights := make([]float64, len(inventoryProfiles))
		for i, p := range inventoryProfiles {
			weights[i] = p.share
		}
		other := inventoryProfiles[stats.WeightedPick(rng, weights)].concept
		if other != prof.concept {
			topics = append(topics, other)
		}
	}

	keywords := make([]string, 0, 4)
	keywords = append(keywords, strings.ReplaceAll(prof.concept, "-", " "))
	for _, w := range words {
		if rng.Bool(0.5) {
			keywords = append(keywords, w)
		}
	}
	// Popular publishers get cleaner traffic: professional sites police
	// their inventory, long-tail sites source traffic.
	bot := prof.botBase * (0.5 + 1.5*math.Min(1, math.Log10(float64(rank)+1)/7))
	if bot > 0.5 {
		bot = 0.5
	}

	_, unsafe := brandUnsafeVerticals[prof.concept]
	return Publisher{
		Domain:        domain,
		Rank:          rank,
		Vertical:      prof.concept,
		Topics:        topics,
		Keywords:      keywords,
		BotPropensity: bot,
		Anonymous:     rng.Bool(cfg.AnonymousFraction),
		BrandUnsafe:   unsafe,
		BeaconHostile: rng.Bool(cfg.HostileFraction),
	}
}

var brandUnsafeVerticals = map[string]struct{}{
	"adult": {}, "casino": {}, "betting": {}, "torrents": {},
}

// Len returns the number of publishers.
func (u *Universe) Len() int { return len(u.pubs) }

// At returns the i'th publisher.
func (u *Universe) At(i int) Publisher { return u.pubs[i] }

// ByDomain returns the publisher with the given domain.
func (u *Universe) ByDomain(domain string) (Publisher, bool) {
	i, ok := u.byDomain[domain]
	if !ok {
		return Publisher{}, false
	}
	return u.pubs[i], true
}

// Taxonomy returns the content taxonomy the universe was built against.
func (u *Universe) Taxonomy() *semsim.Taxonomy { return u.taxonomy }

// Verticals returns the distinct verticals present, sorted.
func (u *Universe) Verticals() []string {
	vs := make([]string, 0, len(u.byVertical))
	for v := range u.byVertical {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// IndexesByVertical returns the indexes of publishers in the given
// vertical. The returned slice must not be modified.
func (u *Universe) IndexesByVertical(v string) []int { return u.byVertical[v] }
