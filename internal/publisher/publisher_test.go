package publisher

import (
	"strings"
	"testing"

	"adaudit/internal/semsim"
)

func testUniverse(t *testing.T, n int) *Universe {
	t.Helper()
	u, err := NewUniverse(Config{Seed: 1, NumPublishers: n})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniverseSize(t *testing.T) {
	u := testUniverse(t, 2000)
	if u.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", u.Len())
	}
}

func TestUniverseRejectsTinyInventory(t *testing.T) {
	if _, err := NewUniverse(Config{Seed: 1, NumPublishers: 3}); err == nil {
		t.Fatal("expected error for tiny inventory")
	}
}

func TestDomainsUniqueAndWellFormed(t *testing.T) {
	u := testUniverse(t, 3000)
	seen := map[string]bool{}
	for i := 0; i < u.Len(); i++ {
		d := u.At(i).Domain
		if seen[d] {
			t.Fatalf("duplicate domain %q", d)
		}
		seen[d] = true
		if !strings.Contains(d, ".") || strings.Contains(d, " ") {
			t.Fatalf("malformed domain %q", d)
		}
	}
}

func TestRanksDistinctAndInRange(t *testing.T) {
	u := testUniverse(t, 3000)
	seen := map[int]bool{}
	for i := 0; i < u.Len(); i++ {
		r := u.At(i).Rank
		if r < 1 || r > 10_000_000 {
			t.Fatalf("rank %d out of range", r)
		}
		if seen[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		seen[r] = true
	}
}

func TestRanksCoverAllDecades(t *testing.T) {
	u := testUniverse(t, 5000)
	decades := map[int]int{}
	for i := 0; i < u.Len(); i++ {
		r := u.At(i).Rank
		d := 0
		for r >= 10 {
			r /= 10
			d++
		}
		decades[d]++
	}
	// Log-uniform ranks must populate every decade 0..6.
	for d := 0; d <= 6; d++ {
		if decades[d] == 0 {
			t.Fatalf("no publishers in rank decade 10^%d (got %v)", d, decades)
		}
	}
}

func TestTopicsAreTaxonomyConcepts(t *testing.T) {
	u := testUniverse(t, 2000)
	tx := u.Taxonomy()
	for i := 0; i < u.Len(); i++ {
		p := u.At(i)
		if len(p.Topics) == 0 {
			t.Fatalf("publisher %s has no topics", p.Domain)
		}
		if p.Topics[0] != p.Vertical {
			t.Fatalf("publisher %s first topic %q != vertical %q", p.Domain, p.Topics[0], p.Vertical)
		}
		for _, topic := range p.Topics {
			if !tx.HasConcept(topic) {
				t.Fatalf("publisher %s topic %q not in taxonomy", p.Domain, topic)
			}
		}
		if len(p.Keywords) == 0 {
			t.Fatalf("publisher %s has no keywords", p.Domain)
		}
	}
}

func TestByDomainRoundTrip(t *testing.T) {
	u := testUniverse(t, 500)
	p := u.At(42)
	got, ok := u.ByDomain(p.Domain)
	if !ok || got.Domain != p.Domain || got.Rank != p.Rank {
		t.Fatalf("ByDomain(%q) = %+v, %v", p.Domain, got, ok)
	}
	if _, ok := u.ByDomain("no-such-site.example"); ok {
		t.Fatal("unknown domain found")
	}
}

func TestVerticalIndex(t *testing.T) {
	u := testUniverse(t, 5000)
	vs := u.Verticals()
	if len(vs) < 20 {
		t.Fatalf("only %d verticals populated", len(vs))
	}
	total := 0
	for _, v := range vs {
		idxs := u.IndexesByVertical(v)
		if len(idxs) == 0 {
			t.Fatalf("vertical %q indexed but empty", v)
		}
		for _, i := range idxs {
			if u.At(i).Vertical != v {
				t.Fatalf("index for %q contains publisher with vertical %q", v, u.At(i).Vertical)
			}
		}
		total += len(idxs)
	}
	if total != u.Len() {
		t.Fatalf("vertical indexes cover %d publishers, want %d", total, u.Len())
	}
}

func TestCampaignVerticalsPresent(t *testing.T) {
	u := testUniverse(t, 8000)
	for _, v := range []string{"research", "universities", "telematics", "football"} {
		if len(u.IndexesByVertical(v)) == 0 {
			t.Fatalf("campaign vertical %q has no inventory", v)
		}
	}
}

func TestBotPropensityBounds(t *testing.T) {
	u := testUniverse(t, 3000)
	for i := 0; i < u.Len(); i++ {
		p := u.At(i)
		if p.BotPropensity < 0 || p.BotPropensity > 0.5 {
			t.Fatalf("publisher %s bot propensity %v out of [0, 0.5]", p.Domain, p.BotPropensity)
		}
	}
}

func TestFootballInventoryMoreBotExposed(t *testing.T) {
	u := testUniverse(t, 8000)
	mean := func(v string) float64 {
		idxs := u.IndexesByVertical(v)
		var sum float64
		for _, i := range idxs {
			sum += u.At(i).BotPropensity
		}
		return sum / float64(len(idxs))
	}
	if mean("football") <= mean("research") {
		t.Fatalf("football bot propensity (%v) should exceed research (%v) per Table 4",
			mean("football"), mean("research"))
	}
}

func TestBrandUnsafeFlag(t *testing.T) {
	u := testUniverse(t, 8000)
	unsafeCount := 0
	for i := 0; i < u.Len(); i++ {
		p := u.At(i)
		switch p.Vertical {
		case "adult", "casino", "betting", "torrents":
			if !p.BrandUnsafe {
				t.Fatalf("publisher %s in %s not flagged brand-unsafe", p.Domain, p.Vertical)
			}
			unsafeCount++
		default:
			if p.BrandUnsafe {
				t.Fatalf("publisher %s in %s wrongly flagged brand-unsafe", p.Domain, p.Vertical)
			}
		}
	}
	if unsafeCount == 0 {
		t.Fatal("no brand-unsafe inventory generated")
	}
}

func TestAnonymousFraction(t *testing.T) {
	u := testUniverse(t, 10000)
	anon := 0
	for i := 0; i < u.Len(); i++ {
		if u.At(i).Anonymous {
			anon++
		}
	}
	frac := float64(anon) / float64(u.Len())
	if frac < 0.03 || frac > 0.10 {
		t.Fatalf("anonymous fraction = %v, want ~0.06", frac)
	}
}

func TestUniverseDeterminism(t *testing.T) {
	u1 := testUniverse(t, 1000)
	u2 := testUniverse(t, 1000)
	for i := 0; i < u1.Len(); i++ {
		a, b := u1.At(i), u2.At(i)
		if a.Domain != b.Domain || a.Rank != b.Rank || a.Vertical != b.Vertical {
			t.Fatalf("universes diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestCustomTaxonomyValidation(t *testing.T) {
	tiny, err := semsim.NewTaxonomyBuilder("root").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUniverse(Config{Seed: 1, NumPublishers: 100, Taxonomy: tiny}); err == nil {
		t.Fatal("expected error for taxonomy missing inventory verticals")
	}
}
