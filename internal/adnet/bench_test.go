package adnet

import (
	"testing"

	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/stats"
)

func benchNetwork(b *testing.B, numPubs int) *Network {
	b.Helper()
	pubs, err := publisher.NewUniverse(publisher.Config{Seed: 1, NumPublishers: numPubs})
	if err != nil {
		b.Fatal(err)
	}
	ips, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	n, err := New(Config{Seed: 1, Publishers: pubs, IPs: ips})
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkCampaignDelivery measures end-to-end delivery simulation
// throughput (impressions/op reported as a metric).
func BenchmarkCampaignDelivery(b *testing.B) {
	n := benchNetwork(b, 20000)
	c := testCampaign("bench", 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := n.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Deliveries) != 10000 {
			b.Fatal("short run")
		}
	}
	b.ReportMetric(10000, "imps/op")
}

// BenchmarkPoolBuild measures targeting-pool construction over the full
// 150K-publisher inventory — the per-campaign setup cost.
func BenchmarkPoolBuild(b *testing.B) {
	n := benchNetwork(b, 150000)
	c := testCampaign("bench", 100)
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := n.buildPools(rng, &c); err != nil {
			b.Fatal(err)
		}
	}
}
