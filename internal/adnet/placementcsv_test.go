package adnet

import (
	"strings"
	"testing"
)

const sampleCSV = `Placement,Impressions,Clicks,Cost
www.futbolhoy.es,"12,345",23,1.23
http://ciencia.es/articulo?id=7,456,1,0.05
anonymous.google,425,0,0.04
--,10,0,0.00
Total: all placements,"13,236",24,1.32
`

func TestParsePlacementCSV(t *testing.T) {
	rep, err := ParsePlacementCSV(strings.NewReader(sampleCSV), "General-005")
	if err != nil {
		t.Fatal(err)
	}
	if rep.CampaignID != "General-005" {
		t.Fatalf("campaign = %q", rep.CampaignID)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d: %+v", len(rep.Rows), rep.Rows)
	}
	byPub := map[string]ReportRow{}
	for _, row := range rep.Rows {
		byPub[row.Publisher] = row
	}
	if row := byPub["futbolhoy.es"]; row.Impressions != 12345 || row.Clicks != 23 {
		t.Fatalf("futbolhoy row = %+v", row)
	}
	// URL placements reduce to the registrable domain.
	if row := byPub["ciencia.es"]; row.Impressions != 456 {
		t.Fatalf("ciencia row = %+v", row)
	}
	// The anonymous aggregate is preserved as-is.
	if rep.AnonymousImpressions() != 425 {
		t.Fatalf("anonymous = %d", rep.AnonymousImpressions())
	}
	// Charged total excludes the skipped placeholder and summary rows.
	if rep.TotalImpressionsCharged != 12345+456+425 {
		t.Fatalf("charged = %d", rep.TotalImpressionsCharged)
	}
}

func TestParsePlacementCSVColumnVariants(t *testing.T) {
	// A differently-labelled export (DSP style).
	csvData := "Site URL;Impr.;Clicks\n" // header only to prove detection fails on ;
	if _, err := ParsePlacementCSV(strings.NewReader(csvData), "c"); err == nil {
		t.Fatal("semicolon-separated header accepted as placement csv")
	}
	csvData = "Site Domain,Impr.,Click-throughs\nexample.es,100,2\n"
	rep, err := ParsePlacementCSV(strings.NewReader(csvData), "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Publisher != "example.es" || rep.Rows[0].Impressions != 100 || rep.Rows[0].Clicks != 2 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
}

func TestParsePlacementCSVErrors(t *testing.T) {
	if _, err := ParsePlacementCSV(strings.NewReader(""), "c"); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ParsePlacementCSV(strings.NewReader("A,B\n1,2\n"), "c"); err == nil {
		t.Fatal("header without placement/impressions accepted")
	}
	if _, err := ParsePlacementCSV(strings.NewReader("Placement,Impressions\nx.es,notanumber\n"), "c"); err == nil {
		t.Fatal("bad impressions accepted")
	}
}

func TestParsedReportFeedsAudit(t *testing.T) {
	// The parsed report works with the audit package's brand-safety
	// comparison: its ReportedPublishers exclude the anonymous label.
	rep, err := ParsePlacementCSV(strings.NewReader(sampleCSV), "c")
	if err != nil {
		t.Fatal(err)
	}
	pubs := rep.ReportedPublishers()
	for _, p := range pubs {
		if p == AnonymousPublisher {
			t.Fatal("anonymous label leaked into publishers")
		}
	}
	if len(pubs) != 2 {
		t.Fatalf("publishers = %v", pubs)
	}
}

func TestNormalizePlacement(t *testing.T) {
	cases := map[string]string{
		"www.X.es":                 "x.es",
		"https://a.b.c/path?q=1":   "a.b.c",
		"  site.com  ":             "site.com",
		"--":                       "",
		"":                         "",
		"http://www.deep.sub.es/#": "deep.sub.es",
	}
	for in, want := range cases {
		if got := normalizePlacement(in); got != want {
			t.Errorf("normalizePlacement(%q) = %q, want %q", in, got, want)
		}
	}
}
