package adnet

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Seller identity — the simulated ecosystem's sellers.json / ads.txt
// layer. Every publisher has a direct seller account, belongs to an
// owner group (a media house operating several domains), and may route
// inventory through the network's exchange account. DeclaredSellers is
// what an ads.txt crawl of the domain would return: the set of seller
// IDs the publisher has authorized to sell its inventory. The audit's
// seller cross-check compares vendor-report attributions against this
// declared set; anything outside it is an unauthorized reseller — the
// dark-pooling signature (Vekaria et al., arXiv 2210.06654).
//
// Identities are pure functions of the domain (fnv hashes, the same
// stable-slice idiom as servesGeo), so the directory needs no storage
// and never perturbs the publisher-universe RNG streams.

// ExchangeSellerID is the network's own exchange account — the seller
// of record for anonymous/masked inventory. Ads.txt-style cross-checks
// treat it as universally declared, and the pooling detector exempts
// it: an exchange legitimately spans every owner group.
const ExchangeSellerID = "exchange.adnetwork.example"

// ownerGroups bounds the owner-group space so unrelated domains
// occasionally share a group — media houses own multiple sites.
const ownerGroups = 512

// DirectSellerID returns the publisher's own seller account ID. It
// embeds the domain, so distinct domains never collide.
func DirectSellerID(domain string) string {
	return "direct:" + domain
}

// OwnerGroupOf returns the owner-group label for a domain — the
// "unrelated publisher groups" unit of the pooling detector. Domains
// hash into a bounded group space; two domains in the same group are
// considered commonly owned.
func OwnerGroupOf(domain string) string {
	h := fnv.New32a()
	h.Write([]byte(domain))
	h.Write([]byte("/owner"))
	return fmt.Sprintf("owner-%03d", h.Sum32()%ownerGroups)
}

// OwnerSellerID returns the seller account of a domain's owner group —
// the legitimate way one seller ID spans several domains.
func OwnerSellerID(group string) string {
	return "owner:" + group
}

// DeclaredSellers returns the seller IDs an ads.txt crawl of the
// domain would list as authorized: the direct account, the owner
// group's account, and the exchange.
func DeclaredSellers(domain string) []string {
	return []string{
		DirectSellerID(domain),
		OwnerSellerID(OwnerGroupOf(domain)),
		ExchangeSellerID,
	}
}

// SellerRegistry is the default directory of declared sellers — the
// simulated equivalent of crawling every publisher's ads.txt plus the
// exchange's sellers.json. It satisfies audit.SellerDirectory.
type SellerRegistry struct{}

// Authorized reports whether seller appears in publisher's declared
// seller set.
func (SellerRegistry) Authorized(publisher, seller string) bool {
	if seller == ExchangeSellerID {
		return true
	}
	if seller == DirectSellerID(publisher) {
		return true
	}
	return seller == OwnerSellerID(OwnerGroupOf(publisher))
}

// KnownExchange reports whether seller is a disclosed exchange
// account — exempt from pooling detection by design.
func (SellerRegistry) KnownExchange(seller string) bool {
	return seller == ExchangeSellerID
}

// OwnerGroup returns the publisher's owner-group label.
func (SellerRegistry) OwnerGroup(publisher string) string {
	return OwnerGroupOf(publisher)
}

// IsPoolSellerID reports whether a seller ID has the dark-pool shape
// the adversary layer mints ("pool-N") — a test convenience, not a
// detection signal.
func IsPoolSellerID(seller string) bool {
	return strings.HasPrefix(seller, "pool-")
}
