// Package adnet simulates the ad network the paper bought campaigns
// from (Google AdWords delivering over the Google Display Network). It
// owns the parts of the ecosystem the auditing methodology treats as an
// opaque counterparty: inventory selection, contextual targeting,
// CPM-blind popularity allocation, per-user repeat exposure without a
// default frequency cap, exposure/viewability outcomes, data-center bot
// traffic, and — crucially — the vendor report generator that only
// reports viewable impressions and masks anonymous Ad Exchange
// inventory, the policies behind the paper's headline findings.
//
// The simulator encodes those policies as ground truth; the audit
// package then demonstrates that the paper's methodology recovers them
// from raw impression traffic alone.
package adnet

import (
	"fmt"
	"time"
)

// TargetingMode selects how the network places a campaign, per the
// AdWords guideline the paper quotes in §4.2: keyword campaigns follow
// a contextual strategy, audience campaigns a user-targeting one
// (Online Behavioural Advertising).
type TargetingMode int

const (
	// TargetingContextual places ads on publishers whose content
	// relates to the campaign keywords — the mode all 8 paper campaigns
	// used.
	TargetingContextual TargetingMode = iota
	// TargetingAudience follows users interested in the campaign's
	// topic wherever they browse; publisher context stops mattering.
	TargetingAudience
)

// String returns the mode name.
func (m TargetingMode) String() string {
	switch m {
	case TargetingContextual:
		return "contextual"
	case TargetingAudience:
		return "audience"
	default:
		return fmt.Sprintf("TargetingMode(%d)", int(m))
	}
}

// Campaign is an advertiser campaign configuration, mirroring the
// columns of the paper's Table 1.
type Campaign struct {
	// ID names the campaign (e.g. "Research-010").
	ID string
	// CreativeID identifies the HTML5 creative carrying the beacon.
	CreativeID string
	// Keywords drive AdWords' contextual targeting for keyword-based
	// campaigns.
	Keywords []string
	// CPM is the cost per thousand impressions in euros.
	CPM float64
	// Geo is the targeted country (ISO alpha-2).
	Geo string
	// Impressions is the number of ad impressions the campaign buys.
	Impressions int
	// Start and End bound the flight dates.
	Start, End time.Time
	// Targeting selects contextual (keyword) or audience (OBA)
	// placement; Table 1's campaigns are all contextual.
	Targeting TargetingMode
	// ExcludedPublishers is the advertiser's placement exclusion list:
	// domains the network must never deliver this campaign to. This is
	// the control the paper argues advertisers cannot use effectively
	// today, because the vendor's viewable-only reports hide most of
	// the publishers that would need excluding.
	ExcludedPublishers []string
}

// Excludes reports whether the campaign's exclusion list contains the
// publisher domain.
func (c *Campaign) Excludes(domain string) bool {
	for _, d := range c.ExcludedPublishers {
		if d == domain {
			return true
		}
	}
	return false
}

// Validate checks the campaign is runnable.
func (c *Campaign) Validate() error {
	switch {
	case c.ID == "":
		return fmt.Errorf("adnet: campaign missing id")
	case len(c.Keywords) == 0:
		return fmt.Errorf("adnet: campaign %s has no keywords", c.ID)
	case c.CPM <= 0:
		return fmt.Errorf("adnet: campaign %s has non-positive CPM", c.ID)
	case c.Geo == "":
		return fmt.Errorf("adnet: campaign %s missing geo", c.ID)
	case c.Impressions <= 0:
		return fmt.Errorf("adnet: campaign %s buys no impressions", c.ID)
	case !c.End.After(c.Start):
		return fmt.Errorf("adnet: campaign %s has empty flight window", c.ID)
	}
	return nil
}

// Budget returns the campaign's total spend in euros.
func (c *Campaign) Budget() float64 {
	return c.CPM * float64(c.Impressions) / 1000
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// PaperCampaigns returns the 8 campaigns of the paper's Table 1, with
// the published impression counts, CPMs, keywords, geos and flight
// dates.
func PaperCampaigns() []Campaign {
	return []Campaign{
		{
			ID: "Research-010", CreativeID: "research-728x90",
			Keywords: []string{"research"}, CPM: 0.10, Geo: "ES",
			Impressions: 5117,
			Start:       date(2016, time.March, 29), End: date(2016, time.March, 31),
		},
		{
			ID: "Research-020", CreativeID: "research-728x90",
			Keywords: []string{"research"}, CPM: 0.20, Geo: "ES",
			Impressions: 42399,
			Start:       date(2016, time.March, 29), End: date(2016, time.March, 31),
		},
		{
			ID: "Football-010", CreativeID: "football-300x250",
			Keywords: []string{"football"}, CPM: 0.10, Geo: "ES",
			Impressions: 33730,
			Start:       date(2016, time.April, 2), End: date(2016, time.April, 3),
		},
		{
			ID: "Football-030", CreativeID: "football-300x250",
			Keywords: []string{"football"}, CPM: 0.30, Geo: "ES",
			Impressions: 24461,
			Start:       date(2016, time.April, 2), End: date(2016, time.April, 3),
		},
		{
			ID: "Russia", CreativeID: "research-728x90",
			Keywords: []string{"research"}, CPM: 0.01, Geo: "RU",
			Impressions: 4096,
			Start:       date(2016, time.March, 29), End: date(2016, time.March, 31),
		},
		{
			ID: "USA", CreativeID: "research-728x90",
			Keywords: []string{"research"}, CPM: 0.01, Geo: "US",
			Impressions: 1178,
			Start:       date(2016, time.March, 29), End: date(2016, time.March, 31),
		},
		{
			ID: "General-005", CreativeID: "general-728x90",
			Keywords: []string{"universities", "research", "telematics"}, CPM: 0.05, Geo: "ES",
			Impressions: 8810,
			Start:       date(2016, time.February, 15), End: date(2016, time.February, 23),
		},
		{
			ID: "General-010", CreativeID: "general-728x90",
			Keywords: []string{"universities", "research", "telematics"}, CPM: 0.10, Geo: "ES",
			Impressions: 42357,
			Start:       date(2016, time.February, 18), End: date(2016, time.February, 23),
		},
	}
}
