package adnet

import (
	"sort"

	"adaudit/internal/stats"
)

// AnonymousPublisher is the label AdWords reports for Ad Exchange
// inventory partners that keep their identity hidden.
const AnonymousPublisher = "anonymous.google"

// ReportRow is one placement row of the vendor report.
type ReportRow struct {
	// Publisher is the placement domain, or AnonymousPublisher for
	// masked Ad Exchange inventory.
	Publisher string
	// Impressions is the impression count the vendor reports for the
	// placement. Per the vendor's (undisclosed) policy this counts only
	// viewable impressions.
	Impressions int64
	// Clicks is the reported click count.
	Clicks int64
}

// VendorReport is what the advertiser downloads from the vendor after
// (or during) the flight — the artifact the paper audits AdWords
// against. Its construction encodes the reporting policies the paper
// uncovered: viewable-only placement rows, anonymous inventory
// masking, an optimistic contextual count, and silent refunds.
type VendorReport struct {
	CampaignID string
	// Rows are the per-placement counts, sorted by impressions
	// descending. Only placements with at least one viewable impression
	// appear; anonymous inventory is collapsed into one row.
	Rows []ReportRow
	// TotalImpressionsCharged is what the advertiser pays for — ALL
	// delivered impressions (viewable or not, bot or not), minus
	// refunds.
	TotalImpressionsCharged int64
	// ContextualImpressions is the vendor's count of contextually
	// delivered impressions (its own criteria, not disclosed).
	ContextualImpressions int64
	// RefundedImpressions is the unexplained post-flight credit the
	// paper observed for data-center traffic.
	RefundedImpressions int64
}

// ReportedPublishers returns the distinct non-anonymous publisher
// domains in the report.
func (r *VendorReport) ReportedPublishers() []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row.Publisher != AnonymousPublisher {
			out = append(out, row.Publisher)
		}
	}
	return out
}

// AnonymousImpressions returns the impression count reported under the
// anonymous label.
func (r *VendorReport) AnonymousImpressions() int64 {
	for _, row := range r.Rows {
		if row.Publisher == AnonymousPublisher {
			return row.Impressions
		}
	}
	return 0
}

// ReportedImpressions returns the total impressions across report rows
// (viewable impressions only, by policy).
func (r *VendorReport) ReportedImpressions() int64 {
	var n int64
	for _, row := range r.Rows {
		n += row.Impressions
	}
	return n
}

// buildReport assembles the vendor report from the ground-truth
// deliveries, applying the vendor's reporting policies.
func (n *Network) buildReport(rng *stats.RNG, c *Campaign, deliveries []Delivery) VendorReport {
	type agg struct {
		imps, clicks int64
	}
	rows := map[string]*agg{}
	var contextual, dcCharged int64

	for i := range deliveries {
		d := &deliveries[i]
		if d.VendorClaimsContextual {
			contextual++
		}
		if d.Device.Bot {
			dcCharged++
		}
		if !d.VendorViewable {
			continue // policy: only viewable impressions are reported
		}
		name := d.Publisher.Domain
		if d.Publisher.Anonymous {
			name = AnonymousPublisher
		}
		a := rows[name]
		if a == nil {
			a = &agg{}
			rows[name] = a
		}
		a.imps++
		a.clicks += int64(d.Clicks)
	}

	report := VendorReport{
		CampaignID:            c.ID,
		ContextualImpressions: contextual,
	}
	for name, a := range rows {
		report.Rows = append(report.Rows, ReportRow{Publisher: name, Impressions: a.imps, Clicks: a.clicks})
	}
	sort.Slice(report.Rows, func(i, j int) bool {
		if report.Rows[i].Impressions != report.Rows[j].Impressions {
			return report.Rows[i].Impressions > report.Rows[j].Impressions
		}
		return report.Rows[i].Publisher < report.Rows[j].Publisher
	})

	// Billing: every delivered impression is charged; a fraction of the
	// data-center traffic is silently refunded after the flight.
	refund := int64(float64(dcCharged) * n.policy.RefundDataCenterFraction)
	report.RefundedImpressions = refund
	report.TotalImpressionsCharged = int64(len(deliveries)) - refund
	_ = rng // reserved for future stochastic reporting policies
	return report
}
