package adnet

import (
	"sort"

	"adaudit/internal/stats"
)

// AnonymousPublisher is the label AdWords reports for Ad Exchange
// inventory partners that keep their identity hidden.
const AnonymousPublisher = "anonymous.google"

// ReportRow is one placement row of the vendor report.
type ReportRow struct {
	// Publisher is the placement domain, or AnonymousPublisher for
	// masked Ad Exchange inventory.
	Publisher string
	// Impressions is the impression count the vendor reports for the
	// placement. Per the vendor's (undisclosed) policy this counts only
	// viewable impressions.
	Impressions int64
	// Clicks is the reported click count.
	Clicks int64
	// SellerID is the sellers.json-style seller of record for the row:
	// the publisher's direct account on honest rows, the exchange
	// account on anonymous inventory, or whatever account the supply
	// chain routed the inventory through — the field the audit's
	// ads.txt cross-check and pooling detector read. Empty on reports
	// predating seller attribution.
	SellerID string
}

// VendorReport is what the advertiser downloads from the vendor after
// (or during) the flight — the artifact the paper audits AdWords
// against. Its construction encodes the reporting policies the paper
// uncovered: viewable-only placement rows, anonymous inventory
// masking, an optimistic contextual count, and silent refunds.
type VendorReport struct {
	CampaignID string
	// Rows are the per-placement counts, sorted by impressions
	// descending. Only placements with at least one viewable impression
	// appear; anonymous inventory is collapsed into one row.
	Rows []ReportRow
	// TotalImpressionsCharged is what the advertiser pays for — ALL
	// delivered impressions (viewable or not, bot or not), minus
	// refunds.
	TotalImpressionsCharged int64
	// ContextualImpressions is the vendor's count of contextually
	// delivered impressions (its own criteria, not disclosed).
	ContextualImpressions int64
	// RefundedImpressions is the unexplained post-flight credit the
	// paper observed for data-center traffic.
	RefundedImpressions int64
}

// ReportedPublishers returns the distinct non-anonymous publisher
// domains in the report.
func (r *VendorReport) ReportedPublishers() []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row.Publisher != AnonymousPublisher {
			out = append(out, row.Publisher)
		}
	}
	return out
}

// AnonymousImpressions returns the impression count reported under the
// anonymous label.
func (r *VendorReport) AnonymousImpressions() int64 {
	for _, row := range r.Rows {
		if row.Publisher == AnonymousPublisher {
			return row.Impressions
		}
	}
	return 0
}

// ReportedImpressions returns the total impressions across report rows
// (viewable impressions only, by policy).
func (r *VendorReport) ReportedImpressions() int64 {
	var n int64
	for _, row := range r.Rows {
		n += row.Impressions
	}
	return n
}

// buildReport assembles the vendor report from the ground-truth
// deliveries, applying the vendor's reporting policies.
func (n *Network) buildReport(rng *stats.RNG, c *Campaign, deliveries []Delivery) VendorReport {
	type agg struct {
		imps, clicks int64
	}
	type rowKey struct {
		name, seller string
	}
	rows := map[rowKey]*agg{}
	var contextual, dcCharged int64

	for i := range deliveries {
		d := &deliveries[i]
		if d.VendorClaimsContextual {
			contextual++
		}
		// The refund cascade only sees data-center address space:
		// residential-proxy bots sail straight through it.
		if d.Device.Bot && !d.Device.ResidentialProxy {
			dcCharged++
		}
		if !d.VendorViewable {
			continue // policy: only viewable impressions are reported
		}
		name := d.Publisher.Domain
		seller := DirectSellerID(d.Publisher.Domain)
		if d.Publisher.Anonymous {
			name = AnonymousPublisher
			seller = ExchangeSellerID
		}
		// Adversarial reselling: the row lands under the label and
		// seller account the supply chain claimed, not the truth.
		if d.ReportedDomain != "" {
			name = d.ReportedDomain
		}
		if d.SellerID != "" {
			seller = d.SellerID
		}
		k := rowKey{name, seller}
		a := rows[k]
		if a == nil {
			a = &agg{}
			rows[k] = a
		}
		a.imps++
		a.clicks += int64(d.Clicks)
	}

	report := VendorReport{
		CampaignID:            c.ID,
		ContextualImpressions: contextual,
	}
	for k, a := range rows {
		report.Rows = append(report.Rows, ReportRow{Publisher: k.name, Impressions: a.imps, Clicks: a.clicks, SellerID: k.seller})
	}
	sort.Slice(report.Rows, func(i, j int) bool {
		if report.Rows[i].Impressions != report.Rows[j].Impressions {
			return report.Rows[i].Impressions > report.Rows[j].Impressions
		}
		if report.Rows[i].Publisher != report.Rows[j].Publisher {
			return report.Rows[i].Publisher < report.Rows[j].Publisher
		}
		return report.Rows[i].SellerID < report.Rows[j].SellerID
	})

	// Billing: every delivered impression is charged; a fraction of the
	// data-center traffic is silently refunded after the flight.
	refund := int64(float64(dcCharged) * n.policy.RefundDataCenterFraction)
	report.RefundedImpressions = refund
	report.TotalImpressionsCharged = int64(len(deliveries)) - refund
	_ = rng // reserved for future stochastic reporting policies
	return report
}
