package adnet

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/semsim"
	"adaudit/internal/stats"
	"adaudit/internal/useragent"
)

// CampaignPolicy holds the per-campaign behaviour knobs of the
// simulated network. The defaults for the 8 paper campaigns are
// calibrated so the auditing pipeline recovers Tables 2–4 and Figures
// 1–3 (see DESIGN.md §2 on encoding the paper's findings as simulator
// ground truth).
type CampaignPolicy struct {
	// ContextStrength is the probability the targeting engine places an
	// impression on a contextually relevant publisher (keyword match).
	ContextStrength float64
	// BehavioralUplift is the probability the vendor *claims* a
	// non-contextually-placed impression as contextual anyway, based on
	// non-disclosed factors (browsing history) — the Table 2 gap.
	BehavioralUplift float64
	// ViewProb is the probability an impression is exposed for >= 1 s
	// (the audit's upper-bound viewability, Table 3).
	ViewProb float64
	// BotMultiplier scales publishers' bot propensity for this
	// campaign's flight (Table 4's per-campaign variation).
	BotMultiplier float64
	// VendorViewableFactor scales the network-wide
	// VendorViewableGivenExposed rate for this campaign (default 1.0).
	// Campaigns whose vendor reports covered unusually few placements —
	// the paper's General-005 had 75% of its publishers unreported —
	// get a factor below 1.
	VendorViewableFactor float64
	// ConversionGivenClick is the probability a human click converts,
	// provided the user is within the first OptimalFrequency exposures
	// (default 0.08). Bots never convert: click-spam generates clicks,
	// not purchases.
	ConversionGivenClick float64
	// ViewThroughConversion is the per-impression probability of a
	// conversion without a click, same frequency window (default 0.0008).
	ViewThroughConversion float64
}

// OptimalFrequency is the exposure count beyond which additional
// impressions stop producing conversions — the Microsoft Advertising
// Institute finding the paper cites when calling a cap of 10
// "a reasonable reference value".
const OptimalFrequency = 10

// paperPolicies are the calibrated policies for Table 1's campaigns.
var paperPolicies = map[string]CampaignPolicy{
	"Research-010": {ContextStrength: 0.020, BehavioralUplift: 0.002, ViewProb: 0.56, BotMultiplier: 0.90},
	"Research-020": {ContextStrength: 0.030, BehavioralUplift: 0.000, ViewProb: 0.52, BotMultiplier: 0.55},
	"Football-010": {ContextStrength: 0.580, BehavioralUplift: 1.000, ViewProb: 0.80, BotMultiplier: 1.10},
	"Football-030": {ContextStrength: 0.410, BehavioralUplift: 1.000, ViewProb: 0.83, BotMultiplier: 1.50},
	"Russia":       {ContextStrength: 0.035, BehavioralUplift: 0.031, ViewProb: 0.63, BotMultiplier: 0.07},
	"USA":          {ContextStrength: 0.055, BehavioralUplift: 0.048, ViewProb: 0.71, BotMultiplier: 0.19},
	"General-005":  {ContextStrength: 0.042, BehavioralUplift: 0.026, ViewProb: 0.75, BotMultiplier: 0.11, VendorViewableFactor: 0.55},
	"General-010":  {ContextStrength: 0.058, BehavioralUplift: 0.535, ViewProb: 0.55, BotMultiplier: 0.12},
}

// Policy holds the network-wide behaviour knobs.
type Policy struct {
	// PerCampaign overrides the per-campaign policy; campaigns absent
	// from the map get DefaultCampaignPolicy.
	PerCampaign map[string]CampaignPolicy
	// RankExponent maps a CPM to the exponent theta of the 1/rank^theta
	// supply weighting. The default encodes the paper's Figure 2
	// finding — LOWER CPM campaigns landed on MORE popular publishers —
	// as theta(cpm) = 0.52 + 0.46*exp(-cpm/0.02), calibrated so a
	// 0.01€ campaign concentrates ~89% of impressions in the top-50K
	// ranks while a 0.30€ campaign reaches only ~68% (Figure 2's
	// summary numbers).
	RankExponent func(cpm float64) float64
	// VendorViewableGivenExposed is the probability an impression
	// exposed >= 1 s also meets the vendor's 50%-of-pixels criterion
	// and is therefore *reported* (Figure 1's missing publishers).
	VendorViewableGivenExposed float64
	// GeoInventoryFraction is the share of the universe serving a
	// non-default geo (the paper's RU/US campaigns saw a small slice of
	// GDN inventory).
	GeoInventoryFraction float64
	// CampaignInventoryFraction is the share of (geo-eligible) inventory
	// any single campaign can win auctions on. Real display networks
	// route each campaign through a budget- and auction-dependent slice
	// of the exchange, so two campaigns overlap only partially — which
	// is why the paper's 8 campaigns reached ~7K mostly-distinct
	// publishers out of GDN's 2M.
	CampaignInventoryFraction float64
	// DefaultGeo is the geo whose campaigns see the full inventory.
	DefaultGeo string
	// FrequencyCap, when positive, truncates per-user deliveries per
	// campaign — the control AdWords does NOT apply by default. Kept
	// configurable for the ablation benchmarks (cap=10 is the
	// literature's optimum the paper cites).
	FrequencyCap int
	// RefundDataCenterFraction is the share of charged data-center
	// impressions the vendor silently refunds after the flight.
	RefundDataCenterFraction float64
	// CTR is the click-through probability for human impressions.
	CTR float64
	// FriendlyIframeShare is the fraction of placements rendered in
	// same-origin iframes, where the beacon can measure visible pixels
	// (default 0.25 — most display inventory is cross-origin).
	FriendlyIframeShare float64
	// OrganicInterestRate is the base rate of users interested in any
	// given campaign topic (default 0.15); AudienceMatchRate is the
	// interested share an audience-targeted campaign reaches (default
	// 0.70). InterestConversionLift multiplies interested users'
	// conversion propensity (default 3).
	OrganicInterestRate    float64
	AudienceMatchRate      float64
	InterestConversionLift float64
	// Adversary plugs the fraud-scenario layer into the vendor policy
	// (see adversary.go). Nil — the default — keeps the supply chain
	// honest and the simulation byte-identical to earlier versions.
	Adversary *Adversary
}

// DefaultPolicy returns the calibrated paper policy.
func DefaultPolicy() Policy {
	return Policy{
		PerCampaign: paperPolicies,
		RankExponent: func(cpm float64) float64 {
			return 0.52 + 0.46*math.Exp(-cpm/0.02)
		},
		VendorViewableGivenExposed: 0.45,
		GeoInventoryFraction:       0.30,
		CampaignInventoryFraction:  0.10,
		DefaultGeo:                 "ES",
		FrequencyCap:               0, // AdWords applies none by default
		RefundDataCenterFraction:   0.30,
		CTR:                        0.004,
		FriendlyIframeShare:        0.25,
		OrganicInterestRate:        0.15,
		AudienceMatchRate:          0.70,
		InterestConversionLift:     3,
	}
}

// DefaultCampaignPolicy derives a policy for a campaign that has no
// calibrated entry, from its keywords' inventory share.
func DefaultCampaignPolicy(c *Campaign, u *publisher.Universe) CampaignPolicy {
	share := 0.0
	for _, kw := range c.Keywords {
		for _, concept := range u.Taxonomy().LookupLemma(kw) {
			share += float64(len(u.IndexesByVertical(concept))) / float64(u.Len())
		}
	}
	strength := share * 8
	if strength > 0.6 {
		strength = 0.6
	}
	return CampaignPolicy{
		ContextStrength:  strength,
		BehavioralUplift: 0.05,
		ViewProb:         0.65,
		BotMultiplier:    1.0,
	}
}

// Network simulates the ad network end to end.
type Network struct {
	pubs    *publisher.Universe
	ips     *ipmeta.Universe
	matcher *semsim.Matcher
	policy  Policy
	seed    int64
}

// Config assembles a Network.
type Config struct {
	Seed int64
	// Publishers is the inventory; required.
	Publishers *publisher.Universe
	// IPs is the address universe; required.
	IPs *ipmeta.Universe
	// Policy defaults to DefaultPolicy().
	Policy *Policy
}

// New validates cfg and returns a Network.
func New(cfg Config) (*Network, error) {
	if cfg.Publishers == nil {
		return nil, fmt.Errorf("adnet: config requires a publisher universe")
	}
	if cfg.IPs == nil {
		return nil, fmt.Errorf("adnet: config requires an IP universe")
	}
	policy := DefaultPolicy()
	if cfg.Policy != nil {
		policy = *cfg.Policy
		if policy.RankExponent == nil {
			policy.RankExponent = DefaultPolicy().RankExponent
		}
	}
	return &Network{
		pubs:    cfg.Publishers,
		ips:     cfg.IPs,
		matcher: semsim.NewMatcher(cfg.Publishers.Taxonomy()),
		policy:  policy,
		seed:    cfg.Seed,
	}, nil
}

// Publishers returns the network's inventory.
func (n *Network) Publishers() *publisher.Universe { return n.pubs }

// Matcher returns the contextual matcher the targeting engine uses.
func (n *Network) Matcher() *semsim.Matcher { return n.matcher }

// Delivery is one served ad impression with the network-side ground
// truth the audit never sees directly.
type Delivery struct {
	// Publisher is the site the impression rendered on.
	Publisher publisher.Publisher
	// Device received the impression.
	Device Device
	// At is the impression time.
	At time.Time
	// Exposure is how long the ad stayed rendered.
	Exposure time.Duration
	// MouseMoves and Clicks are the user interactions.
	MouseMoves int
	Clicks     int
	// PlacedContextually marks impressions the targeting engine
	// deliberately placed on keyword-relevant inventory.
	PlacedContextually bool
	// Converted marks impressions that led to a conversion on the
	// advertiser's site; ConversionValueCents is the action's value and
	// ConvertedAt its time.
	Converted            bool
	ConversionValueCents int64
	ConvertedAt          time.Time
	// VendorClaimsContextual marks impressions the vendor's report
	// counts as contextually delivered (includes non-disclosed
	// behavioural factors).
	VendorClaimsContextual bool
	// VendorViewable marks impressions meeting the vendor's viewability
	// standard; only these reach the vendor's placement report.
	VendorViewable bool
	// VisibilityMeasured marks placements in friendly (same-origin)
	// iframes, where the beacon can read the visible-pixel fraction;
	// MaxVisibleFraction is that measurement. Cross-origin placements
	// (the §3.1 common case) leave both zero.
	VisibilityMeasured bool
	MaxVisibleFraction float64
	// Adversarial ground truth (see adversary.go); all zero on honest
	// runs. ReportedDomain, when set, is the premium domain this
	// impression was fraudulently resold under (the vendor report books
	// it there); SellerID, when set, overrides the seller of record for
	// the report row; InflatedPlacement marks stacked/1-px placements.
	ReportedDomain    string
	SellerID          string
	InflatedPlacement bool
}

// AuditViewable reports whether the impression meets the audit's
// upper-bound viewability criterion (exposed >= 1 s).
func (d *Delivery) AuditViewable() bool { return d.Exposure >= time.Second }

// CampaignResult is everything one campaign run produces.
type CampaignResult struct {
	Campaign   Campaign
	Policy     CampaignPolicy
	Deliveries []Delivery
	Report     VendorReport
}

// Run simulates the full delivery of one campaign and produces both the
// raw deliveries (ground truth) and the vendor's report (what the
// advertiser is told). Runs are deterministic in (network seed,
// campaign ID).
func (n *Network) Run(c Campaign) (*CampaignResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	pol, ok := n.policy.PerCampaign[c.ID]
	if !ok {
		pol = DefaultCampaignPolicy(&c, n.pubs)
	}
	rng := stats.NewRNG(n.seed).Fork("campaign/" + c.ID)

	relevant, general, err := n.buildPools(rng, &c)
	if err != nil {
		return nil, err
	}
	interestedBias := n.policy.OrganicInterestRate
	if c.Targeting == TargetingAudience {
		interestedBias = n.policy.AudienceMatchRate
	}
	uaGen := useragent.NewGenerator(rng.Fork("ua"))
	humans := newDevicePool(rng.Fork("humans"), c.Start, c.End, 3600, func() (Device, error) {
		return newHumanDevice(rng, n.ips, uaGen, c.Geo, defaultFleetConfig(), interestedBias)
	})
	bots := newDevicePool(rng.Fork("bots"), c.Start, c.End, 1200, func() (Device, error) {
		return newBotDevice(rng, n.ips, uaGen, defaultFleetConfig())
	})

	convGivenClick := pol.ConversionGivenClick
	if convGivenClick == 0 {
		convGivenClick = 0.08
	}
	viewThrough := pol.ViewThroughConversion
	if viewThrough == 0 {
		viewThrough = 0.0008
	}

	// The adversary layer, when plugged in, draws from its own forked
	// stream — honest runs take this branch never and stay identical.
	var adv *advState
	if n.policy.Adversary.enabled() {
		adv = n.newAdvState(rng.Fork("adversary"), &c)
	}

	perUser := map[string]int{}
	exposures := map[string]int{}
	deliveries := make([]Delivery, 0, c.Impressions)
	for len(deliveries) < c.Impressions {
		d, err := n.deliverOne(rng, &c, pol, relevant, general, humans, bots)
		if err != nil {
			return nil, err
		}
		if adv != nil {
			if err := adv.apply(&d); err != nil {
				return nil, err
			}
		}
		key := d.Device.Addr.String() + "|" + d.Device.UserAgent
		if cap := n.policy.FrequencyCap; cap > 0 {
			if perUser[key] >= cap {
				continue // capped: the network finds another user
			}
			perUser[key]++
		}
		// Conversions: only humans, only within the first
		// OptimalFrequency exposures — repeat bombardment beyond that
		// point buys nothing (the waste Figure 3 exposes).
		exposures[key]++
		if !d.Device.Bot && exposures[key] <= OptimalFrequency {
			p := viewThrough
			if d.Clicks > 0 {
				p = convGivenClick
			}
			if d.Device.Interested && n.policy.InterestConversionLift > 0 {
				p *= n.policy.InterestConversionLift
			}
			if rng.Bool(p) {
				d.Converted = true
				d.ConversionValueCents = int64(rng.LogNormal(math.Log(2500), 0.8))
				d.ConvertedAt = d.At.Add(time.Duration(rng.Exp(float64(2 * time.Hour))))
			}
		}
		deliveries = append(deliveries, d)
	}

	report := n.buildReport(rng.Fork("report"), &c, deliveries)
	return &CampaignResult{Campaign: c, Policy: pol, Deliveries: deliveries, Report: report}, nil
}

// pool is a weighted publisher pool with O(1) sampling.
type pool struct {
	idxs    []int
	sampler *stats.AliasSampler
}

func (n *Network) buildPools(rng *stats.RNG, c *Campaign) (relevant, general *pool, err error) {
	theta := n.policy.RankExponent(c.CPM)
	excluded := make(map[string]struct{}, len(c.ExcludedPublishers))
	for _, d := range c.ExcludedPublishers {
		excluded[d] = struct{}{}
	}
	var relIdxs, genIdxs []int
	var relW, genW []float64
	for i := 0; i < n.pubs.Len(); i++ {
		p := n.pubs.At(i)
		if _, out := excluded[p.Domain]; out {
			continue // the one placement control the advertiser has
		}
		if !n.servesGeo(p.Domain, c.Geo) {
			continue
		}
		if !n.inCampaignSlice(p.Domain, c.ID) {
			continue
		}
		w := math.Pow(float64(p.Rank), -theta)
		genIdxs = append(genIdxs, i)
		genW = append(genW, w)
		if n.matcher.Relevant(c.Keywords, p.Keywords, p.Topics) {
			relIdxs = append(relIdxs, i)
			relW = append(relW, w)
		}
	}
	if len(genIdxs) == 0 {
		return nil, nil, fmt.Errorf("adnet: no inventory serves geo %s", c.Geo)
	}
	gs, err := stats.NewAliasSampler(rng.Fork("general"), genW)
	if err != nil {
		return nil, nil, fmt.Errorf("adnet: building general pool: %w", err)
	}
	general = &pool{idxs: genIdxs, sampler: gs}
	if len(relIdxs) > 0 {
		rs, err := stats.NewAliasSampler(rng.Fork("relevant"), relW)
		if err != nil {
			return nil, nil, fmt.Errorf("adnet: building relevant pool: %w", err)
		}
		relevant = &pool{idxs: relIdxs, sampler: rs}
	}
	return relevant, general, nil
}

// servesGeo decides whether a publisher serves a campaign geo: the
// default geo sees the whole inventory; other geos see a stable
// pseudo-random slice of it.
func (n *Network) servesGeo(domain, geo string) bool {
	if geo == n.policy.DefaultGeo || n.policy.GeoInventoryFraction >= 1 {
		return true
	}
	h := fnv.New32a()
	h.Write([]byte(domain))
	h.Write([]byte{'/'})
	h.Write([]byte(geo))
	return float64(h.Sum32()%1000) < n.policy.GeoInventoryFraction*1000
}

// inCampaignSlice decides whether a publisher is inside the inventory
// slice this campaign's auctions reach (stable per domain/campaign).
func (n *Network) inCampaignSlice(domain, campaignID string) bool {
	if n.policy.CampaignInventoryFraction <= 0 || n.policy.CampaignInventoryFraction >= 1 {
		return true
	}
	h := fnv.New32a()
	h.Write([]byte(domain))
	h.Write([]byte{'#'})
	h.Write([]byte(campaignID))
	return float64(h.Sum32()%1000) < n.policy.CampaignInventoryFraction*1000
}

func (n *Network) deliverOne(rng *stats.RNG, c *Campaign, pol CampaignPolicy,
	relevant, general *pool, humans, bots *devicePool) (Delivery, error) {

	// Audience campaigns buy users, not contexts: contextual placement
	// is disabled and delivery roams the whole eligible inventory.
	placed := c.Targeting == TargetingContextual && relevant != nil && rng.Bool(pol.ContextStrength)
	var pub publisher.Publisher
	if placed {
		pub = n.pubs.At(relevant.idxs[relevant.sampler.Sample()])
	} else {
		pub = n.pubs.At(general.idxs[general.sampler.Sample()])
	}

	botProb := pub.BotPropensity * pol.BotMultiplier
	if botProb > 0.6 {
		botProb = 0.6
	}
	var (
		dev Device
		at  time.Time
		err error
	)
	if rng.Bool(botProb) {
		dev, at, err = bots.next()
	} else {
		dev, at, err = humans.next()
	}
	if err != nil {
		return Delivery{}, err
	}

	exposure := n.drawExposure(rng, pol.ViewProb, dev.Bot)
	moves, clicks := n.drawInteractions(rng, exposure, dev.Bot)

	d := Delivery{
		Publisher:          pub,
		Device:             dev,
		At:                 at,
		Exposure:           exposure,
		MouseMoves:         moves,
		Clicks:             clicks,
		PlacedContextually: placed,
	}
	d.VendorClaimsContextual = placed || rng.Bool(pol.BehavioralUplift)
	factor := pol.VendorViewableFactor
	if factor == 0 {
		factor = 1
	}
	d.VendorViewable = d.AuditViewable() && rng.Bool(n.policy.VendorViewableGivenExposed*factor)

	// Friendly-iframe placements let the beacon measure visible pixels.
	if rng.Bool(n.policy.FriendlyIframeShare) {
		d.VisibilityMeasured = true
		if d.AuditViewable() {
			// Long exposures skew toward mostly-visible ads.
			d.MaxVisibleFraction = 1 - 0.9*rng.Float64()*rng.Float64()
		} else {
			// Bounces rarely had the ad meaningfully on screen.
			d.MaxVisibleFraction = 0.7 * rng.Float64()
		}
	}
	return d, nil
}

// drawExposure samples the time the ad stays rendered. viewProb is the
// target P(exposure >= 1s); the two-regime log-normal keeps that
// probability exact while producing realistic dwell-time spreads.
func (n *Network) drawExposure(rng *stats.RNG, viewProb float64, bot bool) time.Duration {
	if bot {
		// Bots render pages mechanically: most dwell a few seconds.
		viewProb = 0.85
	}
	if rng.Bool(viewProb) {
		// Exposed regime: median 6 s, clamped to >= 1 s.
		d := time.Duration(rng.LogNormal(math.Log(6), 0.9) * float64(time.Second))
		if d < time.Second {
			d = time.Second
		}
		if d > 10*time.Minute {
			d = 10 * time.Minute
		}
		return d
	}
	// Bounce regime: median 350 ms, clamped to < 1 s.
	d := time.Duration(rng.LogNormal(math.Log(0.35), 0.7) * float64(time.Second))
	if d >= time.Second {
		d = 999 * time.Millisecond
	}
	if d < 20*time.Millisecond {
		d = 20 * time.Millisecond
	}
	return d
}

func (n *Network) drawInteractions(rng *stats.RNG, exposure time.Duration, bot bool) (moves, clicks int) {
	if bot {
		// Headless agents do not move a pointer; some click-fraud bots
		// click a lot.
		if rng.Bool(0.05) {
			clicks = 1 + rng.Intn(3)
		}
		return 0, clicks
	}
	// Humans: mouse activity scales with dwell time (throttled to the
	// beacon's 500 ms sampling).
	maxMoves := int(exposure / (2 * time.Second))
	if maxMoves > 0 {
		moves = rng.Intn(maxMoves + 1)
	}
	if rng.Bool(n.policy.CTR) {
		clicks = 1
	}
	return moves, clicks
}
