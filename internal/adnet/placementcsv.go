package adnet

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsePlacementCSV reads a vendor placement report in the CSV shape ad
// platforms export (AdWords' "Placement performance" download): a
// header row naming at least a placement/URL column and an impressions
// column, optionally clicks. It returns the VendorReport the audit
// package consumes, so the pipeline runs against REAL vendor exports,
// not only the simulator's reports.
//
// Column matching is tolerant: header names are case-folded and matched
// on the substrings real exports use ("placement", "url", "domain" /
// "impressions" / "clicks"). Rows whose placement is empty or "--" are
// skipped; rows labelled anonymous ("anonymous.google") are kept as the
// masked aggregate, exactly as the paper's reports show them. Numeric
// cells may carry thousands separators ("12,345").
func ParsePlacementCSV(r io.Reader, campaignID string) (*VendorReport, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // platform exports pad trailing columns inconsistently
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("adnet: reading placement csv header: %w", err)
	}
	placementCol, impCol, clickCol := -1, -1, -1
	for i, name := range header {
		n := strings.ToLower(strings.TrimSpace(name))
		switch {
		case placementCol < 0 && (strings.Contains(n, "placement") || strings.Contains(n, "url") || strings.Contains(n, "domain")):
			placementCol = i
		case impCol < 0 && strings.Contains(n, "impr"):
			impCol = i
		case clickCol < 0 && strings.Contains(n, "click"):
			clickCol = i
		}
	}
	if placementCol < 0 || impCol < 0 {
		return nil, fmt.Errorf("adnet: placement csv needs placement and impressions columns, got %v", header)
	}

	rep := &VendorReport{CampaignID: campaignID}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("adnet: placement csv line %d: %w", line, err)
		}
		if placementCol >= len(rec) || impCol >= len(rec) {
			continue // padded summary rows
		}
		placement := normalizePlacement(rec[placementCol])
		if placement == "" {
			continue
		}
		// Skip platform summary rows ("Total", "Total: all placements").
		if strings.HasPrefix(strings.ToLower(placement), "total") {
			continue
		}
		imps, err := parseCount(rec[impCol])
		if err != nil {
			return nil, fmt.Errorf("adnet: placement csv line %d: bad impressions %q", line, rec[impCol])
		}
		var clicks int64
		if clickCol >= 0 && clickCol < len(rec) {
			if v, err := parseCount(rec[clickCol]); err == nil {
				clicks = v
			}
		}
		rep.Rows = append(rep.Rows, ReportRow{Publisher: placement, Impressions: imps, Clicks: clicks})
		rep.TotalImpressionsCharged += imps
	}
	return rep, nil
}

// normalizePlacement reduces a placement cell to a registrable domain:
// strips scheme, path and a www. prefix, lower-cases, and drops the
// platform's placeholder dashes.
func normalizePlacement(raw string) string {
	s := strings.TrimSpace(raw)
	if s == "" || s == "--" {
		return ""
	}
	s = strings.TrimPrefix(s, "http://")
	s = strings.TrimPrefix(s, "https://")
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	s = strings.ToLower(strings.TrimPrefix(s, "www."))
	return s
}

// parseCount parses a report integer that may carry thousands
// separators or surrounding quotes.
func parseCount(raw string) (int64, error) {
	s := strings.TrimSpace(raw)
	s = strings.ReplaceAll(s, ",", "")
	s = strings.ReplaceAll(s, ".", "") // some locales separate thousands with dots
	if s == "" {
		return 0, nil
	}
	return strconv.ParseInt(s, 10, 64)
}
