package adnet

import (
	"fmt"
	"hash/fnv"
	"time"

	"adaudit/internal/ipmeta"
	"adaudit/internal/stats"
	"adaudit/internal/useragent"
)

// Adversary is the pluggable fraud-scenario layer of the vendor
// policy: it rewrites a slice of the honestly generated deliveries
// into the supply-chain attacks the audit's adversarial dimensions
// exist to catch. All knobs are shares in [0, 1]; the zero value (and
// a nil Policy.Adversary) disables the layer entirely — default runs
// draw nothing from the adversary RNG stream and stay byte-identical
// to the pre-adversary simulator.
//
// The four attacks and the detector each one trains:
//
//   - SpoofedShare: domain spoofing. A low-quality site's inventory is
//     resold under a premium domain's label; the vendor report books
//     the row against the premium domain but the seller of record is
//     the fraudster's own account — which the premium domain's ads.txt
//     never declared. Caught by the seller cross-check.
//   - PooledShare: dark pooling. Inventory from unrelated publishers
//     is pooled behind shared seller IDs (Vekaria et al., arXiv
//     2210.06654). Caught by the pooling detector (one seller ID
//     spanning too many owner groups).
//   - ResidentialBotShare: residential-proxy bots. Automated traffic
//     routed through residential IPs with browser user agents — clean
//     ipmeta, so the DC-IP cascade sees nothing — but a degenerate
//     behavioral signature: fixed inter-impression cadence, fixed
//     exposure, fixed visibility, zero conversions. Caught by the
//     behavioral bot score.
//   - InflatedShare: viewability inflation. Stacked/1-px placements
//     (Zhang et al., arXiv 1505.05788) keep the ad "rendered" for a
//     long exposure while ~1% of its pixels are ever on screen.
//     Caught by the behavioral dimension's placement-inflation check.
type Adversary struct {
	// SpoofedShare of deliveries is resold under SpoofTarget's label.
	SpoofedShare float64
	// SpoofTarget is the premium domain spoofed rows claim; empty
	// selects the universe's top-ranked non-anonymous publisher.
	SpoofTarget string
	// PooledShare of deliveries is attributed to dark-pool seller IDs.
	PooledShare float64
	// Pools is how many distinct dark-pool seller IDs circulate
	// (default 2).
	Pools int
	// ResidentialBotShare of deliveries is replaced by proxy-bot
	// traffic.
	ResidentialBotShare float64
	// ResidentialBotGap is each bot's fixed inter-impression cadence
	// (default 45s); ResidentialBotImpressions is each bot's planned
	// impression count (default 24).
	ResidentialBotGap         time.Duration
	ResidentialBotImpressions int
	// InflatedShare is the fraction of the inventory operating stacked
	// placements (a stable per-domain property, like servesGeo slices).
	InflatedShare float64
}

// enabled reports whether any attack is switched on.
func (a *Adversary) enabled() bool {
	return a != nil && (a.SpoofedShare > 0 || a.PooledShare > 0 ||
		a.ResidentialBotShare > 0 || a.InflatedShare > 0)
}

// AdversaryScenario returns the named preset scenario: "spoof",
// "pool", "bots", "inflate", or "all" (every attack at once).
func AdversaryScenario(name string) (*Adversary, error) {
	switch name {
	case "spoof":
		return &Adversary{SpoofedShare: 0.06}, nil
	case "pool":
		return &Adversary{PooledShare: 0.08, Pools: 2}, nil
	case "bots":
		return &Adversary{ResidentialBotShare: 0.05}, nil
	case "inflate":
		return &Adversary{InflatedShare: 0.04}, nil
	case "all":
		return &Adversary{
			SpoofedShare:        0.06,
			PooledShare:         0.08,
			Pools:               2,
			ResidentialBotShare: 0.05,
			InflatedShare:       0.04,
		}, nil
	}
	return nil, fmt.Errorf("adnet: unknown adversary scenario %q (want spoof, pool, bots, inflate or all)", name)
}

// Fixed signatures of the automated attacks. Real fraud automation is
// exactly this lazy: the same timer, the same render, every time.
const (
	resBotExposure        = 2 * time.Second
	resBotVisibleFraction = 0.35
	inflatedVisibleFrac   = 0.02
)

// AdversarialTruth summarizes the ground-truth fraud labels of one
// campaign's deliveries — what the detectors are graded against.
type AdversarialTruth struct {
	Spoofed, Pooled, ResidentialBot, Inflated int
	// PoolSellers are the dark-pool seller IDs observed; SpoofTarget
	// is the premium domain spoofed rows claimed (empty when none).
	PoolSellers []string
	SpoofTarget string
}

// AdversarialTruth derives the fraud labels from the deliveries.
func (r *CampaignResult) AdversarialTruth() AdversarialTruth {
	t := AdversarialTruth{}
	pools := map[string]bool{}
	for i := range r.Deliveries {
		d := &r.Deliveries[i]
		if d.ReportedDomain != "" {
			t.Spoofed++
			t.SpoofTarget = d.ReportedDomain
		}
		if IsPoolSellerID(d.SellerID) {
			t.Pooled++
			pools[d.SellerID] = true
		}
		if d.Device.ResidentialProxy {
			t.ResidentialBot++
		}
		if d.InflatedPlacement {
			t.Inflated++
		}
	}
	for p := range pools {
		t.PoolSellers = append(t.PoolSellers, p)
	}
	return t
}

// advState is the per-run adversary machinery: its own forked RNG
// stream (so honest draws are untouched), the resolved spoof target,
// and the residential-bot fleet.
type advState struct {
	adv      Adversary
	rng      *stats.RNG
	premium  string
	resBots  *resBotFleet
	spoofCut float64
	poolCut  float64
	botCut   float64
}

func (n *Network) newAdvState(rng *stats.RNG, c *Campaign) *advState {
	adv := *n.policy.Adversary
	if adv.Pools <= 0 {
		adv.Pools = 2
	}
	if adv.ResidentialBotGap <= 0 {
		adv.ResidentialBotGap = 45 * time.Second
	}
	if adv.ResidentialBotImpressions <= 0 {
		adv.ResidentialBotImpressions = 24
	}
	s := &advState{
		adv:      adv,
		rng:      rng,
		premium:  adv.SpoofTarget,
		spoofCut: adv.SpoofedShare,
		poolCut:  adv.SpoofedShare + adv.PooledShare,
		botCut:   adv.SpoofedShare + adv.PooledShare + adv.ResidentialBotShare,
	}
	if s.premium == "" {
		s.premium = n.premiumDomain()
	}
	if adv.ResidentialBotShare > 0 {
		s.resBots = &resBotFleet{
			rng:    rng.Fork("resbots"),
			uag:    useragent.NewGenerator(rng.Fork("resbots/ua")),
			ips:    n.ips,
			geo:    c.Geo,
			start:  c.Start,
			end:    c.End,
			gap:    adv.ResidentialBotGap,
			perBot: adv.ResidentialBotImpressions,
		}
	}
	return s
}

// premiumDomain is the default spoof target: the top-ranked
// non-anonymous publisher of the universe.
func (n *Network) premiumDomain() string {
	best, bestRank := "", 0
	for i := 0; i < n.pubs.Len(); i++ {
		p := n.pubs.At(i)
		if p.Anonymous {
			continue
		}
		if best == "" || p.Rank < bestRank {
			best, bestRank = p.Domain, p.Rank
		}
	}
	return best
}

// inflatedPublisher decides whether a domain operates stacked
// placements — a stable pseudo-random inventory slice, same idiom as
// servesGeo.
func inflatedPublisher(domain string, share float64) bool {
	if share <= 0 {
		return false
	}
	h := fnv.New32a()
	h.Write([]byte(domain))
	h.Write([]byte("/inflate"))
	return float64(h.Sum32()%1000) < share*1000
}

// apply rewrites one honestly generated delivery according to the
// scenario. It draws exactly one roulette value per delivery (plus
// pool/bot draws when their branch fires), all from the adversary's
// own forked stream — the honest generator's streams never move.
func (s *advState) apply(d *Delivery) error {
	// Stacked placements are a property of the site: every visitor gets
	// the long-exposure / buried-pixels signature.
	if inflatedPublisher(d.Publisher.Domain, s.adv.InflatedShare) {
		d.InflatedPlacement = true
		d.Exposure = time.Second + 3*d.Exposure
		d.VisibilityMeasured = true
		d.MaxVisibleFraction = inflatedVisibleFrac
	}
	r := s.rng.Float64()
	switch {
	case r < s.spoofCut:
		// Resell this impression under the premium label. Anonymous
		// inventory stays honest (it is already masked), and spoofing
		// the target with itself would be a no-op.
		if !d.Publisher.Anonymous && d.Publisher.Domain != s.premium {
			d.ReportedDomain = s.premium
			d.SellerID = DirectSellerID(d.Publisher.Domain)
		}
	case r < s.poolCut:
		if !d.Publisher.Anonymous {
			d.SellerID = fmt.Sprintf("pool-%d", s.rng.Intn(s.adv.Pools))
		}
	case r < s.botCut:
		dev, at, err := s.resBots.next()
		if err != nil {
			return err
		}
		d.Device = dev
		d.At = at
		d.Exposure = resBotExposure
		d.MouseMoves, d.Clicks = 0, 0
		d.VisibilityMeasured = true
		d.MaxVisibleFraction = resBotVisibleFraction
	}
	return nil
}

// resBotFleet hands out residential-proxy bot impressions on a fixed
// timer: each bot fires exactly every `gap` from its start offset —
// the cadence regularity the behavioral detector keys on.
type resBotFleet struct {
	rng        *stats.RNG
	uag        *useragent.Generator
	ips        *ipmeta.Universe
	geo        string
	start, end time.Time
	gap        time.Duration
	perBot     int
	active     []*resBotSlot
}

type resBotSlot struct {
	dev    Device
	left   int
	nextAt time.Time
}

func (f *resBotFleet) newSlot() (*resBotSlot, error) {
	addr, err := f.ips.DrawResidentialAddr(f.rng, f.geo)
	if err != nil {
		return nil, fmt.Errorf("adnet: drawing proxy-bot address: %w", err)
	}
	dev := Device{
		Addr:               addr,
		UserAgent:          f.uag.Browser(), // masquerades as a human browser
		Country:            f.geo,
		Bot:                true,
		ResidentialProxy:   true,
		PlannedImpressions: f.perBot,
	}
	// Start early enough that the full fixed-cadence burst fits inside
	// the flight: clamping at the flight end would blur the signature.
	flight := f.end.Sub(f.start)
	slack := flight - time.Duration(f.perBot)*f.gap
	if slack < 0 {
		slack = 0
	}
	offset := time.Duration(f.rng.Float64() * float64(slack))
	return &resBotSlot{dev: dev, left: f.perBot, nextAt: f.start.Add(offset)}, nil
}

func (f *resBotFleet) next() (Device, time.Time, error) {
	const workingSet = 6
	for len(f.active) < workingSet {
		slot, err := f.newSlot()
		if err != nil {
			return Device{}, time.Time{}, err
		}
		f.active = append(f.active, slot)
	}
	// The earliest-due bot fires next — deterministic, no draw.
	best := 0
	for i, s := range f.active {
		if s.nextAt.Before(f.active[best].nextAt) {
			best = i
		}
	}
	slot := f.active[best]
	slot.left--
	dev, at := slot.dev, slot.nextAt
	slot.nextAt = slot.nextAt.Add(f.gap)
	if slot.left <= 0 {
		f.active[best] = f.active[len(f.active)-1]
		f.active = f.active[:len(f.active)-1]
	}
	return dev, at, nil
}
