package adnet

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"adaudit/internal/ipmeta"
	"adaudit/internal/stats"
	"adaudit/internal/useragent"
)

// Device is one traffic source: a (IP address, User-Agent) pair — the
// paper's user identity. Human devices carry residential addresses in
// the campaign geo; bot devices carry data-center addresses and
// automation-flavoured agents.
type Device struct {
	// Addr is the device's public IP address.
	Addr netip.Addr
	// UserAgent is the device's browser identification.
	UserAgent string
	// Country is the device's location (bots report the pseudo-country
	// "ZZ": data-center traffic has no meaningful consumer geo).
	Country string
	// Bot marks data-center automation.
	Bot bool
	// ResidentialProxy marks bots routed through residential IP space
	// with browser user agents — automation the DC-IP cascade cannot
	// see (clean ipmeta), left for the behavioral detector.
	ResidentialProxy bool
	// BeaconBlocked marks devices whose browser/antivirus configuration
	// prevents the injected JavaScript from running — the §3.1 error
	// model behind the audit's own measurement loss.
	BeaconBlocked bool
	// PlannedImpressions is how many impressions of one campaign this
	// device will absorb, drawn from a heavy-tailed repeat-exposure
	// model (no frequency cap).
	PlannedImpressions int
	// Interested marks users whose browsing history matches the
	// campaign's topic — what audience (OBA) targeting selects for, and
	// what lifts conversion propensity.
	Interested bool
}

// fleetConfig tunes device generation.
type fleetConfig struct {
	// blockedFraction is the share of human devices that never execute
	// third-party JavaScript (default 0.10; with per-connection loss it
	// produces the paper's 16.5% unlogged-publisher rate).
	blockedFraction float64
	// humanTailAlpha shapes the Pareto repeat-exposure tail for humans.
	// 1.25 reproduces Figure 3's tail: ~1700 of ~160K-impression users
	// above 10 impressions, ~170 above 100.
	humanTailAlpha float64
	// humanTailCap bounds a single human's impressions.
	humanTailCap int
	// botTailAlpha/botTailCap shape bot repeat exposure (heavier).
	botTailAlpha float64
	botTailCap   int
}

func defaultFleetConfig() fleetConfig {
	return fleetConfig{
		blockedFraction: 0.10,
		humanTailAlpha:  1.25,
		humanTailCap:    400,
		botTailAlpha:    0.95,
		botTailCap:      600,
	}
}

// newHumanDevice draws a residential device in the given country.
// interestedBias is the probability the user's browsing history matches
// the campaign topic — the organic base rate for contextual campaigns,
// or the audience-match rate for OBA campaigns.
func newHumanDevice(rng *stats.RNG, ipu *ipmeta.Universe, uag *useragent.Generator, country string, cfg fleetConfig, interestedBias float64) (Device, error) {
	addr, err := ipu.DrawResidentialAddr(rng, country)
	if err != nil {
		return Device{}, fmt.Errorf("adnet: drawing human address: %w", err)
	}
	planned := int(rng.Pareto(1, cfg.humanTailAlpha))
	if planned > cfg.humanTailCap {
		planned = cfg.humanTailCap
	}
	if planned < 1 {
		planned = 1
	}
	return Device{
		Addr:               addr,
		UserAgent:          uag.Browser(),
		Country:            country,
		BeaconBlocked:      rng.Bool(cfg.blockedFraction),
		PlannedImpressions: planned,
		Interested:         rng.Bool(interestedBias),
	}, nil
}

// newBotDevice draws a data-center device.
func newBotDevice(rng *stats.RNG, ipu *ipmeta.Universe, uag *useragent.Generator, cfg fleetConfig) (Device, error) {
	addr, err := ipu.DrawHostingAddr(rng)
	if err != nil {
		return Device{}, fmt.Errorf("adnet: drawing bot address: %w", err)
	}
	planned := int(rng.Pareto(1, cfg.botTailAlpha))
	if planned > cfg.botTailCap {
		planned = cfg.botTailCap
	}
	if planned < 1 {
		planned = 1
	}
	return Device{
		Addr:               addr,
		UserAgent:          uag.Bot(),
		Country:            "ZZ",
		Bot:                true,
		BeaconBlocked:      false, // bots render the full creative: views must count
		PlannedImpressions: planned,
	}, nil
}

// devicePool hands out (device, timestamp) pairs for one campaign's
// impressions, respecting each device's planned impression count (so
// repeat exposure is heavy-tailed) and its own arrival process (so the
// inter-arrival times of a heavy user reproduce Figure 3's tight
// bursts: the busier the user, the shorter the median gap).
type devicePool struct {
	rng        *stats.RNG
	make       func() (Device, error)
	active     []*poolSlot
	start, end time.Time
	// baseGapSeconds scales the arrival process: a device planning k
	// impressions sees median gaps of roughly baseGapSeconds/k.
	baseGapSeconds float64
}

type poolSlot struct {
	dev       Device
	left      int
	nextAt    time.Time
	gapMedian time.Duration
}

func newDevicePool(rng *stats.RNG, start, end time.Time, baseGapSeconds float64, make func() (Device, error)) *devicePool {
	return &devicePool{
		rng:            rng,
		make:           make,
		start:          start,
		end:            end,
		baseGapSeconds: baseGapSeconds,
	}
}

func (p *devicePool) newSlot() (*poolSlot, error) {
	dev, err := p.make()
	if err != nil {
		return nil, err
	}
	flight := p.end.Sub(p.start)
	// First impression lands uniformly in the first 80% of the flight
	// so bursts have room to complete.
	offset := time.Duration(p.rng.Float64() * 0.8 * float64(flight))
	gap := p.baseGapSeconds / float64(dev.PlannedImpressions)
	if gap < 2 {
		gap = 2
	}
	return &poolSlot{
		dev:       dev,
		left:      dev.PlannedImpressions,
		nextAt:    p.start.Add(offset),
		gapMedian: time.Duration(gap * float64(time.Second)),
	}, nil
}

// next returns the device and timestamp for the next impression. New
// devices join the pool on demand; a device leaves once its planned
// impressions are consumed. Selection is biased toward devices with
// more remaining impressions, interleaving heavy users' bursts with
// one-off visitors.
func (p *devicePool) next() (Device, time.Time, error) {
	// Keep a working set so heavy devices spread across the flight; the
	// working-set size trades interleaving for memory.
	const workingSet = 64
	for len(p.active) < workingSet {
		slot, err := p.newSlot()
		if err != nil {
			return Device{}, time.Time{}, err
		}
		p.active = append(p.active, slot)
	}
	weights := make([]float64, len(p.active))
	for i, s := range p.active {
		weights[i] = float64(s.left)
	}
	i := stats.WeightedPick(p.rng, weights)
	slot := p.active[i]
	slot.left--
	dev := slot.dev
	at := slot.nextAt
	if at.After(p.end) {
		at = p.end
	}
	// Advance the device's clock by a log-normal gap around its median.
	gap := time.Duration(p.rng.LogNormal(math.Log(float64(slot.gapMedian)), 0.6))
	if gap < 2*time.Second {
		gap = 2 * time.Second
	}
	slot.nextAt = slot.nextAt.Add(gap)
	if slot.left <= 0 {
		p.active[i] = p.active[len(p.active)-1]
		p.active = p.active[:len(p.active)-1]
	}
	return dev, at, nil
}
