package adnet

import (
	"testing"
	"time"

	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
)

// testNetwork builds a small-but-realistic network fixture shared by
// the package tests.
func testNetwork(t *testing.T) *Network {
	t.Helper()
	pubs, err := publisher.NewUniverse(publisher.Config{Seed: 11, NumPublishers: 4000})
	if err != nil {
		t.Fatal(err)
	}
	ips, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Seed: 11, Publishers: pubs, IPs: ips})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testCampaign(id string, imps int) Campaign {
	c := Campaign{
		ID: id, CreativeID: "cr", Keywords: []string{"football"},
		CPM: 0.10, Geo: "ES", Impressions: imps,
		Start: date(2016, time.April, 2), End: date(2016, time.April, 3),
	}
	return c
}

func TestCampaignValidate(t *testing.T) {
	good := testCampaign("c", 100)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Campaign){
		func(c *Campaign) { c.ID = "" },
		func(c *Campaign) { c.Keywords = nil },
		func(c *Campaign) { c.CPM = 0 },
		func(c *Campaign) { c.Geo = "" },
		func(c *Campaign) { c.Impressions = 0 },
		func(c *Campaign) { c.End = c.Start },
	}
	for i, mutate := range bad {
		c := testCampaign("c", 100)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid campaign accepted", i)
		}
	}
}

func TestCampaignBudget(t *testing.T) {
	c := testCampaign("c", 10000)
	if got := c.Budget(); got != 1.0 {
		t.Fatalf("Budget = %v, want 1.0 (10000 imps at 0.10 CPM)", got)
	}
}

func TestPaperCampaignsMatchTable1(t *testing.T) {
	cs := PaperCampaigns()
	if len(cs) != 8 {
		t.Fatalf("PaperCampaigns returned %d campaigns", len(cs))
	}
	totals := 0
	byID := map[string]Campaign{}
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		byID[c.ID] = c
		totals += c.Impressions
	}
	// Table 1 column checks.
	if byID["Research-010"].Impressions != 5117 || byID["Research-010"].CPM != 0.10 {
		t.Fatalf("Research-010 = %+v", byID["Research-010"])
	}
	if byID["Football-030"].CPM != 0.30 || byID["Football-030"].Impressions != 24461 {
		t.Fatalf("Football-030 = %+v", byID["Football-030"])
	}
	if byID["Russia"].Geo != "RU" || byID["Russia"].CPM != 0.01 {
		t.Fatalf("Russia = %+v", byID["Russia"])
	}
	if byID["General-005"].Geo != "ES" || len(byID["General-005"].Keywords) != 3 {
		t.Fatalf("General-005 = %+v", byID["General-005"])
	}
	// "around 160K ad impressions" overall.
	if totals != 5117+42399+33730+24461+4096+1178+8810+42357 {
		t.Fatalf("total impressions = %d", totals)
	}
}

func TestRunDeliversExactCount(t *testing.T) {
	n := testNetwork(t)
	res, err := n.Run(testCampaign("count-test", 2000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) != 2000 {
		t.Fatalf("delivered %d impressions, want 2000", len(res.Deliveries))
	}
}

func TestRunDeterminism(t *testing.T) {
	n1, n2 := testNetwork(t), testNetwork(t)
	r1, err := n1.Run(testCampaign("det", 500))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := n2.Run(testCampaign("det", 500))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Deliveries {
		a, b := r1.Deliveries[i], r2.Deliveries[i]
		if a.Publisher.Domain != b.Publisher.Domain || a.Device.Addr != b.Device.Addr ||
			!a.At.Equal(b.At) || a.Exposure != b.Exposure {
			t.Fatalf("deliveries diverged at %d", i)
		}
	}
}

func TestRunRejectsInvalidCampaign(t *testing.T) {
	n := testNetwork(t)
	c := testCampaign("x", 10)
	c.CPM = -1
	if _, err := n.Run(c); err == nil {
		t.Fatal("invalid campaign ran")
	}
}

func TestDeliveriesWithinFlightWindow(t *testing.T) {
	n := testNetwork(t)
	c := testCampaign("window", 1500)
	res, err := n.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Deliveries {
		if d.At.Before(c.Start) || d.At.After(c.End) {
			t.Fatalf("delivery at %v outside flight [%v, %v]", d.At, c.Start, c.End)
		}
	}
}

func TestContextualPlacementLandsOnRelevantInventory(t *testing.T) {
	n := testNetwork(t)
	res, err := n.Run(testCampaign("ctx", 3000))
	if err != nil {
		t.Fatal(err)
	}
	m := n.Matcher()
	placed := 0
	for _, d := range res.Deliveries {
		if !d.PlacedContextually {
			continue
		}
		placed++
		if !m.Relevant(res.Campaign.Keywords, d.Publisher.Keywords, d.Publisher.Topics) {
			t.Fatalf("contextual placement on irrelevant publisher %s (%s)",
				d.Publisher.Domain, d.Publisher.Vertical)
		}
	}
	if placed == 0 {
		t.Fatal("football campaign placed nothing contextually")
	}
}

func TestViewabilityMatchesPolicy(t *testing.T) {
	n := testNetwork(t)
	res, err := n.Run(testCampaign("view", 8000))
	if err != nil {
		t.Fatal(err)
	}
	pol := res.Policy
	humanViewable, humanTotal := 0, 0
	for _, d := range res.Deliveries {
		if d.Device.Bot {
			continue
		}
		humanTotal++
		if d.AuditViewable() {
			humanViewable++
		}
	}
	got := float64(humanViewable) / float64(humanTotal)
	if got < pol.ViewProb-0.04 || got > pol.ViewProb+0.04 {
		t.Fatalf("human viewability = %v, want ~%v", got, pol.ViewProb)
	}
}

func TestVendorViewableImpliesAuditViewable(t *testing.T) {
	n := testNetwork(t)
	res, err := n.Run(testCampaign("vv", 3000))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Deliveries {
		if d.VendorViewable && !d.AuditViewable() {
			t.Fatal("vendor counted a sub-second impression as viewable")
		}
	}
}

func TestBotTrafficUsesDataCenterAddresses(t *testing.T) {
	n := testNetwork(t)
	res, err := n.Run(testCampaign("bots", 6000))
	if err != nil {
		t.Fatal(err)
	}
	cls := &ipmeta.Classifier{DB: nil, DenyList: nil}
	_ = cls
	bots := 0
	for _, d := range res.Deliveries {
		if !d.Device.Bot {
			continue
		}
		bots++
		if d.Device.Country != "ZZ" {
			t.Fatalf("bot device has country %q", d.Device.Country)
		}
		if d.Device.BeaconBlocked {
			t.Fatal("bot device marked beacon-blocked")
		}
	}
	if bots == 0 {
		t.Fatal("football campaign attracted no bot traffic")
	}
	frac := float64(bots) / float64(len(res.Deliveries))
	if frac < 0.02 || frac > 0.25 {
		t.Fatalf("bot fraction = %v, want high-but-plausible for football", frac)
	}
}

func TestFrequencyCapAblation(t *testing.T) {
	pubs, _ := publisher.NewUniverse(publisher.Config{Seed: 3, NumPublishers: 2000})
	ips, _ := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 3})
	pol := DefaultPolicy()
	pol.FrequencyCap = 10
	n, err := New(Config{Seed: 3, Publishers: pubs, IPs: ips, Policy: &pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Run(testCampaign("capped", 5000))
	if err != nil {
		t.Fatal(err)
	}
	perUser := map[string]int{}
	for _, d := range res.Deliveries {
		perUser[d.Device.Addr.String()+"|"+d.Device.UserAgent]++
	}
	for u, c := range perUser {
		if c > 10 {
			t.Fatalf("user %s received %d impressions despite cap 10", u, c)
		}
	}
}

func TestNoCapYieldsHeavyTail(t *testing.T) {
	n := testNetwork(t)
	res, err := n.Run(testCampaign("uncapped", 20000))
	if err != nil {
		t.Fatal(err)
	}
	perUser := map[string]int{}
	for _, d := range res.Deliveries {
		perUser[d.Device.Addr.String()+"|"+d.Device.UserAgent]++
	}
	over10 := 0
	for _, c := range perUser {
		if c > 10 {
			over10++
		}
	}
	if over10 == 0 {
		t.Fatal("no user above 10 impressions: repeat-exposure tail missing")
	}
}

func TestGeoRestrictsInventory(t *testing.T) {
	n := testNetwork(t)
	ru := testCampaign("ru", 2000)
	ru.Geo = "RU"
	ru.Keywords = []string{"research"}
	res, err := n.Run(ru)
	if err != nil {
		t.Fatal(err)
	}
	// Every delivered publisher must serve RU per the stable geo hash.
	for _, d := range res.Deliveries {
		if !n.servesGeo(d.Publisher.Domain, "RU") {
			t.Fatalf("publisher %s does not serve RU", d.Publisher.Domain)
		}
	}
	// And the RU slice must be a strict subset of inventory.
	totalRU := 0
	for i := 0; i < n.Publishers().Len(); i++ {
		if n.servesGeo(n.Publishers().At(i).Domain, "RU") {
			totalRU++
		}
	}
	if totalRU >= n.Publishers().Len() {
		t.Fatal("RU sees the full inventory")
	}
	// Human devices must be in-geo.
	for _, d := range res.Deliveries {
		if !d.Device.Bot && d.Device.Country != "RU" {
			t.Fatalf("human device in %q for RU campaign", d.Device.Country)
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	pubs, _ := publisher.NewUniverse(publisher.Config{Seed: 1, NumPublishers: 1000})
	ips, _ := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 1})
	if _, err := New(Config{Seed: 1, IPs: ips}); err == nil {
		t.Fatal("missing publishers accepted")
	}
	if _, err := New(Config{Seed: 1, Publishers: pubs}); err == nil {
		t.Fatal("missing IPs accepted")
	}
}

func TestDefaultCampaignPolicyForUnknownCampaign(t *testing.T) {
	n := testNetwork(t)
	c := testCampaign("not-in-table-1", 500)
	res, err := n.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy.ContextStrength <= 0 {
		t.Fatalf("derived policy has no context strength: %+v", res.Policy)
	}
	if res.Policy.ViewProb <= 0 || res.Policy.ViewProb >= 1 {
		t.Fatalf("derived ViewProb = %v", res.Policy.ViewProb)
	}
}

func TestConversionsOnlyHumansWithinOptimalFrequency(t *testing.T) {
	n := testNetwork(t)
	res, err := n.Run(testCampaign("conv-model", 15000))
	if err != nil {
		t.Fatal(err)
	}
	exposures := map[string]int{}
	conversions := 0
	for _, d := range res.Deliveries {
		key := d.Device.Addr.String() + "|" + d.Device.UserAgent
		exposures[key]++
		if !d.Converted {
			continue
		}
		conversions++
		if d.Device.Bot {
			t.Fatal("bot converted")
		}
		if exposures[key] > OptimalFrequency {
			t.Fatalf("conversion on exposure %d, beyond the optimal-frequency window", exposures[key])
		}
		if d.ConversionValueCents <= 0 {
			t.Fatalf("conversion without value: %+v", d)
		}
		if !d.ConvertedAt.After(d.At) {
			t.Fatalf("conversion at %v not after impression at %v", d.ConvertedAt, d.At)
		}
	}
	if conversions == 0 {
		t.Fatal("campaign produced no conversions")
	}
}

func TestExclusionListRespected(t *testing.T) {
	n := testNetwork(t)
	// First flight: find which publishers the campaign lands on.
	c := testCampaign("excl", 3000)
	res, err := n.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range res.Deliveries {
		counts[d.Publisher.Domain]++
	}
	// Exclude the campaign's top publishers and re-fly.
	var excluded []string
	for dom, cnt := range counts {
		if cnt >= 5 {
			excluded = append(excluded, dom)
		}
	}
	if len(excluded) == 0 {
		t.Fatal("no repeat publishers to exclude")
	}
	c.ExcludedPublishers = excluded
	res2, err := n.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res2.Deliveries {
		if c.Excludes(d.Publisher.Domain) {
			t.Fatalf("excluded publisher %s still received impressions", d.Publisher.Domain)
		}
	}
}

func TestBrandSafetyLoopReducesExposure(t *testing.T) {
	// The paper's motivation end to end: audit the first flight, build
	// the exclusion list the vendor report cannot give you, and verify
	// the re-flight avoids every identified unsafe publisher.
	n := testNetwork(t)
	c := testCampaign("loop", 8000)
	res, err := n.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	var unsafeSeen []string
	unsafeImps := 0
	for _, d := range res.Deliveries {
		if d.Publisher.BrandUnsafe {
			unsafeImps++
			unsafeSeen = append(unsafeSeen, d.Publisher.Domain)
		}
	}
	if unsafeImps == 0 {
		t.Skip("no unsafe exposure in this run")
	}
	c.ExcludedPublishers = unsafeSeen
	res2, err := n.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res2.Deliveries {
		if c.Excludes(d.Publisher.Domain) {
			t.Fatalf("blacklisted unsafe publisher %s hit again", d.Publisher.Domain)
		}
	}
}

func TestAudienceTargetingMode(t *testing.T) {
	n := testNetwork(t)
	ctxCamp := testCampaign("mode-ctx", 25000)
	audCamp := testCampaign("mode-aud", 25000)
	audCamp.Targeting = TargetingAudience

	ctxRes, err := n.Run(ctxCamp)
	if err != nil {
		t.Fatal(err)
	}
	audRes, err := n.Run(audCamp)
	if err != nil {
		t.Fatal(err)
	}

	// Audience mode never places contextually...
	for _, d := range audRes.Deliveries {
		if d.PlacedContextually {
			t.Fatal("audience campaign placed contextually")
		}
	}
	// ...while the contextual campaign does.
	placed := 0
	for _, d := range ctxRes.Deliveries {
		if d.PlacedContextually {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("contextual campaign placed nothing contextually")
	}

	// Audience mode reaches far more interested users.
	interestedShare := func(res *CampaignResult) float64 {
		humans, interested := 0, 0
		for _, d := range res.Deliveries {
			if d.Device.Bot {
				continue
			}
			humans++
			if d.Device.Interested {
				interested++
			}
		}
		return float64(interested) / float64(humans)
	}
	ctxShare, audShare := interestedShare(ctxRes), interestedShare(audRes)
	if audShare < 0.55 || audShare > 0.85 {
		t.Fatalf("audience interested share = %v, want ~0.70", audShare)
	}
	if ctxShare > 0.30 {
		t.Fatalf("contextual interested share = %v, want ~0.15", ctxShare)
	}

	// Interest lifts conversions: the audience campaign converts more
	// per impression.
	conv := func(res *CampaignResult) int {
		n := 0
		for _, d := range res.Deliveries {
			if d.Converted {
				n++
			}
		}
		return n
	}
	// Expected lift: interested users convert at 3x, so the audience
	// campaign (~70% interested) should clearly beat the contextual one
	// (~15% interested) at this sample size.
	if float64(conv(audRes)) < 1.2*float64(conv(ctxRes)) {
		t.Fatalf("audience conversions (%d) should clearly exceed contextual (%d)",
			conv(audRes), conv(ctxRes))
	}
}

func TestTargetingModeString(t *testing.T) {
	if TargetingContextual.String() != "contextual" || TargetingAudience.String() != "audience" {
		t.Fatal("mode strings wrong")
	}
	if TargetingMode(9).String() != "TargetingMode(9)" {
		t.Fatal("unknown mode string wrong")
	}
}
