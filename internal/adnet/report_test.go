package adnet

import (
	"testing"

	"adaudit/internal/stats"
)

func runForReport(t *testing.T, imps int) *CampaignResult {
	t.Helper()
	n := testNetwork(t)
	res, err := n.Run(testCampaign("report-test", imps))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReportOnlyListsViewablePlacements(t *testing.T) {
	res := runForReport(t, 5000)
	// Build the set of domains with at least one vendor-viewable
	// delivery (non-anonymous).
	viewable := map[string]bool{}
	delivered := map[string]bool{}
	for _, d := range res.Deliveries {
		if d.Publisher.Anonymous {
			continue
		}
		delivered[d.Publisher.Domain] = true
		if d.VendorViewable {
			viewable[d.Publisher.Domain] = true
		}
	}
	reported := map[string]bool{}
	for _, p := range res.Report.ReportedPublishers() {
		reported[p] = true
	}
	for p := range reported {
		if !viewable[p] {
			t.Fatalf("report lists %s which had no viewable impression", p)
		}
	}
	for p := range viewable {
		if !reported[p] {
			t.Fatalf("report misses %s which had viewable impressions", p)
		}
	}
	// The policy must actually hide some delivered publishers — this is
	// the paper's Figure 1 phenomenon.
	hidden := 0
	for p := range delivered {
		if !reported[p] {
			hidden++
		}
	}
	if hidden == 0 {
		t.Fatal("vendor report hides nothing; Figure 1 cannot reproduce")
	}
}

func TestReportMasksAnonymousInventory(t *testing.T) {
	res := runForReport(t, 8000)
	anonDelivered := false
	for _, d := range res.Deliveries {
		if d.Publisher.Anonymous && d.VendorViewable {
			anonDelivered = true
			break
		}
	}
	if !anonDelivered {
		t.Skip("no anonymous viewable deliveries in this run")
	}
	if res.Report.AnonymousImpressions() == 0 {
		t.Fatal("anonymous inventory not aggregated under anonymous.google")
	}
	for _, p := range res.Report.ReportedPublishers() {
		if p == AnonymousPublisher {
			t.Fatal("ReportedPublishers leaked the anonymous label")
		}
	}
}

func TestReportChargesAllImpressionsMinusRefund(t *testing.T) {
	res := runForReport(t, 5000)
	dc := int64(0)
	for _, d := range res.Deliveries {
		if d.Device.Bot {
			dc++
		}
	}
	wantRefund := int64(float64(dc) * DefaultPolicy().RefundDataCenterFraction)
	if res.Report.RefundedImpressions != wantRefund {
		t.Fatalf("refund = %d, want %d", res.Report.RefundedImpressions, wantRefund)
	}
	if res.Report.TotalImpressionsCharged != int64(len(res.Deliveries))-wantRefund {
		t.Fatalf("charged = %d", res.Report.TotalImpressionsCharged)
	}
	// Reported (viewable) impressions are strictly fewer than charged.
	if res.Report.ReportedImpressions() >= res.Report.TotalImpressionsCharged {
		t.Fatalf("reported %d >= charged %d", res.Report.ReportedImpressions(),
			res.Report.TotalImpressionsCharged)
	}
}

func TestReportContextualCountMatchesClaims(t *testing.T) {
	res := runForReport(t, 4000)
	var claims int64
	for _, d := range res.Deliveries {
		if d.VendorClaimsContextual {
			claims++
		}
	}
	if res.Report.ContextualImpressions != claims {
		t.Fatalf("contextual = %d, want %d", res.Report.ContextualImpressions, claims)
	}
	// Football campaigns claim everything (BehavioralUplift 1.0 for the
	// calibrated paper campaigns; this test campaign derives a policy,
	// so just check claims >= placements).
	var placed int64
	for _, d := range res.Deliveries {
		if d.PlacedContextually {
			placed++
		}
	}
	if claims < placed {
		t.Fatalf("claims %d < placements %d", claims, placed)
	}
}

func TestReportRowsSorted(t *testing.T) {
	res := runForReport(t, 5000)
	rows := res.Report.Rows
	for i := 1; i < len(rows); i++ {
		if rows[i].Impressions > rows[i-1].Impressions {
			t.Fatal("report rows not sorted by impressions desc")
		}
	}
}

func TestAliasSamplerIntegration(t *testing.T) {
	// The alias sampler drives publisher selection; sanity-check its
	// distribution here at the integration level.
	rng := stats.NewRNG(5)
	s, err := stats.NewAliasSampler(rng, []float64{8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i := 0; i < 50000; i++ {
		counts[s.Sample()]++
	}
	if counts[0] < counts[1]*4 || counts[0] < counts[2]*4 {
		t.Fatalf("alias sampler distribution off: %v", counts)
	}
}
