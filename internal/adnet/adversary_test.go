package adnet

import (
	"reflect"
	"testing"

	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
)

// adversaryNetwork is testNetwork with a fraud scenario plugged into
// the vendor policy.
func adversaryNetwork(t *testing.T, adv *Adversary) *Network {
	t.Helper()
	pubs, err := publisher.NewUniverse(publisher.Config{Seed: 11, NumPublishers: 4000})
	if err != nil {
		t.Fatal(err)
	}
	ips, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultPolicy()
	pol.Adversary = adv
	n, err := New(Config{Seed: 11, Publishers: pubs, IPs: ips, Policy: &pol})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestAdversaryOffIsIdentical pins the layer's most important
// property: a nil adversary and an all-zeroes adversary both leave the
// simulation byte-identical to a network without the field — no draw
// is taken from any stream unless an attack share is set.
func TestAdversaryOffIsIdentical(t *testing.T) {
	c := testCampaign("adv-off", 2000)
	base, err := testNetwork(t).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, adv := range []*Adversary{nil, {}} {
		got, err := adversaryNetwork(t, adv).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("adversary=%v perturbed an honest run", adv)
		}
	}
}

// TestHonestReportSellers checks the honest seller attribution: every
// row of a clean run carries a declared seller, and anonymous
// inventory stays one exchange-attributed row.
func TestHonestReportSellers(t *testing.T) {
	res, err := testNetwork(t).Run(testCampaign("honest-sellers", 4000))
	if err != nil {
		t.Fatal(err)
	}
	reg := SellerRegistry{}
	anonRows := 0
	for _, row := range res.Report.Rows {
		if row.Publisher == AnonymousPublisher {
			anonRows++
			if row.SellerID != ExchangeSellerID {
				t.Fatalf("anonymous row attributed to %q, want exchange", row.SellerID)
			}
			continue
		}
		if !reg.Authorized(row.Publisher, row.SellerID) {
			t.Fatalf("honest row %s attributed to undeclared seller %s", row.Publisher, row.SellerID)
		}
	}
	if anonRows > 1 {
		t.Fatalf("anonymous inventory split into %d rows, want at most 1", anonRows)
	}
}

func TestAdversarySpoof(t *testing.T) {
	adv, err := AdversaryScenario("spoof")
	if err != nil {
		t.Fatal(err)
	}
	res, err := adversaryNetwork(t, adv).Run(testCampaign("adv-spoof", 5000))
	if err != nil {
		t.Fatal(err)
	}
	truth := res.AdversarialTruth()
	if truth.Spoofed == 0 {
		t.Fatal("spoof scenario injected no spoofed deliveries")
	}
	// The premium label must show up in the report attributed to
	// sellers its ads.txt never declared.
	reg := SellerRegistry{}
	unauthorized := 0
	for _, row := range res.Report.Rows {
		if row.Publisher == truth.SpoofTarget && !reg.Authorized(row.Publisher, row.SellerID) {
			unauthorized++
		}
	}
	if unauthorized == 0 {
		t.Fatalf("no unauthorized rows under spoof target %s (spoofed=%d)", truth.SpoofTarget, truth.Spoofed)
	}
}

func TestAdversaryPool(t *testing.T) {
	adv, err := AdversaryScenario("pool")
	if err != nil {
		t.Fatal(err)
	}
	res, err := adversaryNetwork(t, adv).Run(testCampaign("adv-pool", 5000))
	if err != nil {
		t.Fatal(err)
	}
	truth := res.AdversarialTruth()
	if truth.Pooled == 0 || len(truth.PoolSellers) == 0 {
		t.Fatal("pool scenario injected no pooled deliveries")
	}
	// Each pool seller's report rows must span several unrelated owner
	// groups — the co-occurrence signature the detector keys on.
	groups := map[string]map[string]bool{}
	for _, row := range res.Report.Rows {
		if IsPoolSellerID(row.SellerID) {
			if groups[row.SellerID] == nil {
				groups[row.SellerID] = map[string]bool{}
			}
			groups[row.SellerID][OwnerGroupOf(row.Publisher)] = true
		}
	}
	if len(groups) == 0 {
		t.Fatal("no pool-seller rows reached the report")
	}
	for seller, g := range groups {
		if len(g) < 2 {
			t.Errorf("pool seller %s spans %d owner group(s), want >= 2", seller, len(g))
		}
	}
}

func TestAdversaryResidentialBots(t *testing.T) {
	adv, err := AdversaryScenario("bots")
	if err != nil {
		t.Fatal(err)
	}
	res, err := adversaryNetwork(t, adv).Run(testCampaign("adv-bots", 5000))
	if err != nil {
		t.Fatal(err)
	}
	truth := res.AdversarialTruth()
	if truth.ResidentialBot == 0 {
		t.Fatal("bots scenario injected no residential-proxy traffic")
	}
	var dcBots int64
	for i := range res.Deliveries {
		d := &res.Deliveries[i]
		if d.Device.ResidentialProxy {
			if !d.Device.Bot {
				t.Fatal("residential proxy not marked as bot ground truth")
			}
			if d.Converted {
				t.Fatal("residential-proxy bot converted")
			}
			if d.Exposure != resBotExposure || d.MaxVisibleFraction != resBotVisibleFraction {
				t.Fatalf("proxy bot signature not fixed: exposure=%v frac=%v", d.Exposure, d.MaxVisibleFraction)
			}
		}
		if d.Device.Bot && !d.Device.ResidentialProxy {
			dcBots++
		}
	}
	// The silent refund only covers the data-center cascade's catches:
	// proxy-bot impressions stay fully charged.
	wantRefund := int64(float64(dcBots) * DefaultPolicy().RefundDataCenterFraction)
	if res.Report.RefundedImpressions != wantRefund {
		t.Fatalf("refund %d covers proxy bots, want %d (DC bots only)",
			res.Report.RefundedImpressions, wantRefund)
	}
}

func TestAdversaryInflate(t *testing.T) {
	adv, err := AdversaryScenario("inflate")
	if err != nil {
		t.Fatal(err)
	}
	res, err := adversaryNetwork(t, adv).Run(testCampaign("adv-inflate", 5000))
	if err != nil {
		t.Fatal(err)
	}
	truth := res.AdversarialTruth()
	if truth.Inflated == 0 {
		t.Fatal("inflate scenario injected no stacked placements")
	}
	for i := range res.Deliveries {
		d := &res.Deliveries[i]
		if !d.InflatedPlacement {
			continue
		}
		if !d.AuditViewable() {
			t.Fatal("stacked placement below the exposure threshold — inflation must inflate")
		}
		if !d.Device.ResidentialProxy && (!d.VisibilityMeasured || d.MaxVisibleFraction != inflatedVisibleFrac) {
			t.Fatalf("stacked placement fraction %v, want pinned %v", d.MaxVisibleFraction, inflatedVisibleFrac)
		}
	}
}
