// Package logutil is the shared structured-logging setup for the
// repo's commands: one pair of flags (-log-level, -log-format) that
// every binary registers the same way, building a log/slog logger
// whose handler attaches the pipeline trace ID carried in a request's
// context (trace.ContextWithID) to every record it emits — so a
// sampled impression's server-side log lines and its flight-recorder
// trace join on one ID.
package logutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"

	"adaudit/internal/trace"
)

// Flags holds the shared logging flag values after parsing.
type Flags struct {
	Level  string
	Format string
}

// Register installs -log-level and -log-format on fs with the shared
// defaults. Call before fs.Parse; read the logger with Flags.Logger
// after.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.StringVar(&f.Format, "log-format", "text", "log output format: text or json")
	return f
}

// Logger builds the logger the parsed flags describe, writing to w.
func (f *Flags) Logger(w io.Writer) (*slog.Logger, error) {
	return New(w, f.Level, f.Format)
}

// New builds a trace-aware slog logger writing to w. level is one of
// debug/info/warn/error; format is text or json.
func New(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("logutil: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch format {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("logutil: unknown log format %q (want text or json)", format)
	}
	return slog.New(WithTraceIDs(h)), nil
}

// WithTraceIDs wraps h so every record logged through a context
// carrying a pipeline trace ID (trace.ContextWithID) gains a trace_id
// attribute. Records without one are passed through untouched.
func WithTraceIDs(h slog.Handler) slog.Handler {
	if _, ok := h.(traceHandler); ok {
		return h
	}
	return traceHandler{inner: h}
}

type traceHandler struct {
	inner slog.Handler
}

func (h traceHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if id, ok := trace.IDFromContext(ctx); ok {
		r.AddAttrs(slog.String("trace_id", id.String()))
	}
	return h.inner.Handle(ctx, r)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{inner: h.inner.WithGroup(name)}
}
