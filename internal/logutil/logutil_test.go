package logutil

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"strings"
	"testing"

	"adaudit/internal/trace"
)

func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Level != "info" || f.Format != "text" {
		t.Fatalf("defaults = %q/%q, want info/text", f.Level, f.Format)
	}
	if _, err := f.Logger(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterParse(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lg, err := f.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.Bytes())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestBadValues(t *testing.T) {
	if _, err := New(&bytes.Buffer{}, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := New(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("quiet")
	lg.Warn("loud")
	out := buf.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Fatalf("level filter broken: %q", out)
	}
}

func TestTraceIDAttached(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	id := trace.NextID()
	ctx := trace.ContextWithID(context.Background(), id)
	lg.InfoContext(ctx, "traced")
	lg.Info("untraced")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var traced, untraced map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &traced); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &untraced); err != nil {
		t.Fatal(err)
	}
	if traced["trace_id"] != id.String() {
		t.Fatalf("trace_id = %v, want %s", traced["trace_id"], id)
	}
	if _, ok := untraced["trace_id"]; ok {
		t.Fatalf("untraced record has trace_id: %v", untraced)
	}
}

func TestWithTraceIDsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	h := WithTraceIDs(lg.Handler())
	if h != lg.Handler() {
		t.Fatal("double wrap")
	}
	// WithAttrs/WithGroup keep the wrapper.
	id := trace.NextID()
	ctx := trace.ContextWithID(context.Background(), id)
	slog := lg.With("a", 1).WithGroup("g")
	slog.InfoContext(ctx, "m", "b", 2)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	g, _ := rec["g"].(map[string]any)
	if g == nil || g["trace_id"] != id.String() {
		t.Fatalf("trace_id lost through WithAttrs/WithGroup: %v", rec)
	}
}
