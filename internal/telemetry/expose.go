package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): one HELP/TYPE header per
// family, histogram series expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	// Group by family name, preserving first-registration order.
	order := []string{}
	families := map[string][]SeriesSnapshot{}
	for _, s := range snaps {
		if _, ok := families[s.Name]; !ok {
			order = append(order, s.Name)
		}
		families[s.Name] = append(families[s.Name], s)
	}
	for _, name := range order {
		fam := families[name]
		if fam[0].Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(fam[0].Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam[0].Kind); err != nil {
			return err
		}
		for _, s := range fam {
			if err := writePromSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSeries(w io.Writer, s SeriesSnapshot) error {
	if s.Hist == nil {
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels, "", ""), formatValue(s.Value))
		return err
	}
	cum := uint64(0)
	for i, c := range s.Hist.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Hist.Bounds) {
			le = formatValue(s.Hist.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels, "", ""), formatValue(s.Hist.Sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Hist.Count); err != nil {
		return err
	}
	// Exemplar trace IDs ride in a comment so plain text-format parsers
	// (which ignore # lines) stay compatible; the JSON view carries the
	// same ID structurally.
	if s.Hist.ExemplarTraceID != "" {
		if _, err := fmt.Fprintf(w, "# EXEMPLAR %s%s trace_id=%s\n", s.Name, promLabels(s.Labels, "", ""), s.Hist.ExemplarTraceID); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders a label set, optionally appending one extra pair
// (the histogram le label). Returns "" for an empty set.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// WriteJSON renders the expvar-style JSON view: an object keyed by
// canonical series identity. Histogram entries carry count, sum, mean
// and the p50/p90/p99 estimates alongside the raw buckets, so a
// dashboard can plot latency without re-deriving quantiles.
func (r *Registry) WriteJSON(w io.Writer) error {
	type histJSON struct {
		Count    uint64    `json:"count"`
		Sum      float64   `json:"sum"`
		Mean     float64   `json:"mean"`
		P50      float64   `json:"p50"`
		P90      float64   `json:"p90"`
		P99      float64   `json:"p99"`
		Bounds   []float64 `json:"bounds"`
		Counts   []uint64  `json:"counts"`
		Exemplar string    `json:"exemplar_trace_id,omitempty"`
	}
	out := map[string]any{}
	for _, s := range r.Snapshot() {
		if s.Hist != nil {
			out[s.Key()] = histJSON{
				Count:    s.Hist.Count,
				Sum:      s.Hist.Sum,
				Mean:     s.Hist.Mean(),
				P50:      s.Hist.Quantile(0.50),
				P90:      s.Hist.Quantile(0.90),
				P99:      s.Hist.Quantile(0.99),
				Bounds:   s.Hist.Bounds,
				Counts:   s.Hist.Counts,
				Exemplar: s.Hist.ExemplarTraceID,
			}
			continue
		}
		out[s.Key()] = s.Value
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the Prometheus text format (GET only).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the JSON view (GET only).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
