// Package telemetry is the system's observability substrate: a
// dependency-free metrics registry with counters, gauges and
// fixed-bucket histograms, designed so the ingest hot path pays only
// atomic adds — no locks, no allocations — while exposition (Prometheus
// text format, expvar-style JSON) walks a consistent snapshot.
//
// The paper's methodology (§3) depends on the collector faithfully
// measuring timestamps and exposure under load; this package is how the
// measurement apparatus itself is measured. Instruments are registered
// once (registration takes a lock and may allocate) and then updated
// from any goroutine. All instrument methods are nil-receiver-safe so
// uninstrumented components can share the same code path at zero cost.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates instrument types in snapshots and exposition.
type Kind string

const (
	KindCounter Kind = "counter"
	KindGauge   Kind = "gauge"
	KindHist    Kind = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored: counters only go
// up). Nil-safe.
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value. Nil-safe (returns 0).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative allowed). Nil-safe.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value. Nil-safe (returns 0).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Values are seconds
// (the Prometheus base-unit convention); the sum is tracked at
// nanosecond resolution so the hot path is a pair of atomic adds rather
// than a compare-and-swap loop on float bits.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, strictly
	// increasing; an implicit +Inf bucket follows.
	bounds []float64
	// nanoBounds mirror bounds in integer nanoseconds for the duration
	// fast path.
	nanoBounds []int64
	counts     []atomic.Uint64 // len(bounds)+1
	sumNanos   atomic.Int64
	// exemplar holds the trace ID of a recent sampled observation (0 =
	// none) — the bridge from an aggregate latency to one concrete
	// impression in the flight recorder.
	exemplar atomic.Uint64
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("telemetry: histogram bounds not strictly increasing at %d (%g <= %g)", i, bounds[i], bounds[i-1])
		}
	}
	h := &Histogram{
		bounds:     append([]float64(nil), bounds...),
		nanoBounds: make([]int64, len(bounds)),
		counts:     make([]atomic.Uint64, len(bounds)+1),
	}
	for i, b := range h.bounds {
		h.nanoBounds[i] = int64(b * 1e9)
	}
	return h, nil
}

// Observe records a value in seconds. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.observeNanos(int64(v * 1e9))
}

// ObserveDuration records a duration — the hot-path entry point used by
// the ingest pipeline. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.observeNanos(n)
}

func (h *Histogram) observeNanos(n int64) {
	// Buckets are few (tens); linear scan beats binary search on such
	// small sorted slices and is branch-predictor friendly because most
	// observations land in the low buckets.
	i := 0
	for i < len(h.nanoBounds) && n > h.nanoBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(n)
}

// SetExemplar attaches a trace ID to the histogram: the most recent
// traced observation wins. Only called for sampled (traced)
// observations, so the untraced hot path never touches it. Nil-safe.
func (h *Histogram) SetExemplar(traceID uint64) {
	if h == nil || traceID == 0 {
		return
	}
	h.exemplar.Store(traceID)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds (exclusive of the
	// implicit +Inf bucket).
	Bounds []float64 `json:"bounds"`
	// Counts are per-bucket (non-cumulative) observation counts;
	// Counts[len(Bounds)] is the +Inf bucket.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of observed values in seconds.
	Sum float64 `json:"sum"`
	// ExemplarTraceID is the 16-hex-digit trace ID of a recent traced
	// observation, linking this histogram to the flight recorder
	// (empty when no traced observation has been recorded).
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
}

// Snapshot copies the histogram state. Nil-safe (returns zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = float64(h.sumNanos.Load()) / 1e9
	if ex := h.exemplar.Load(); ex != 0 {
		s.ExemplarTraceID = fmt.Sprintf("%016x", ex)
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the bucket holding the target rank. Returns 0
// when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := lo
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if c == 0 || hi == lo {
				return hi
			}
			frac := (rank - float64(prev)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observed value in seconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// LatencyBuckets are the default bounds for operation latencies,
// spanning 1 µs to 2.5 s in a 1-2.5-5 progression — store inserts sit
// in the microseconds, full WebSocket sessions in the milliseconds.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
	}
}

// ExposureBuckets are bounds for ad-exposure durations: the paper's
// viewability threshold is 1 s and the session horizon 30 minutes.
func ExposureBuckets() []float64 {
	return []float64{0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600, 1800}
}

// series is one registered instrument plus its identity.
type series struct {
	name   string
	help   string
	kind   Kind
	labels map[string]string
	key    string

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds registered instruments. Registration is mutexed;
// instrument updates never touch the registry again.
type Registry struct {
	mu      sync.Mutex
	series  map[string]*series
	ordered []*series
	// kinds pins each family name to one kind and help string.
	kinds map[string]Kind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: map[string]*series{},
		kinds:  map[string]Kind{},
	}
}

// seriesKey builds the canonical identity "name{k1=v1,k2=v2}".
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid metric name %q", name)
		}
	}
	return nil
}

// register returns the existing series for key or inserts s. It panics
// on a kind conflict for the same family name: that is a programming
// error, not a runtime condition.
func (r *Registry) register(name, help string, kind Kind, labels map[string]string, build func() *series) *series {
	if err := validName(name); err != nil {
		panic(err)
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.series[key]; ok {
		if existing.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", key, kind, existing.kind))
		}
		return existing
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("telemetry: family %s re-registered as %s (was %s)", name, kind, k))
	}
	s := build()
	s.name, s.help, s.kind, s.key = name, help, kind, key
	if len(labels) > 0 {
		s.labels = make(map[string]string, len(labels))
		for k, v := range labels {
			s.labels[k] = v
		}
	}
	r.series[key] = s
	r.ordered = append(r.ordered, s)
	r.kinds[name] = kind
	return s
}

// Counter registers (or finds) a counter series. labels may be nil.
// Nil-registry-safe: returns an unregistered but functional counter.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.register(name, help, KindCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	}).counter
}

// Gauge registers (or finds) a gauge series. Nil-registry-safe.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.register(name, help, KindGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values already maintained elsewhere (store
// record counts, uptime). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, KindGauge, labels, func() *series {
		return &series{gaugeFn: fn}
	})
}

// Histogram registers (or finds) a histogram with the given bucket
// upper bounds (seconds, strictly increasing; +Inf is implicit).
// Nil-registry-safe: returns an unregistered but functional histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels map[string]string) *Histogram {
	h, err := newHistogram(bounds)
	if err != nil {
		panic(err)
	}
	if r == nil {
		return h
	}
	return r.register(name, help, KindHist, labels, func() *series {
		return &series{hist: h}
	}).hist
}

// CounterVec is a family of counters distinguished by one label whose
// values appear at runtime (reject class, close reason). With is a
// lock-free sync.Map hit after first use of a value.
type CounterVec struct {
	reg   *Registry
	name  string
	help  string
	label string
	m     sync.Map // label value -> *Counter
}

// CounterVec registers a labelled counter family. Nil-registry-safe.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{reg: r, name: name, help: help, label: label}
}

// With returns the counter for one label value, creating and
// registering it on first use. Nil-safe.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	if c, ok := v.m.Load(value); ok {
		return c.(*Counter)
	}
	c := v.reg.Counter(v.name, v.help, map[string]string{v.label: value})
	actual, _ := v.m.LoadOrStore(value, c)
	return actual.(*Counter)
}

// SeriesSnapshot is one series at a point in time.
type SeriesSnapshot struct {
	Name   string            `json:"name"`
	Kind   Kind              `json:"kind"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds counter and gauge readings.
	Value float64 `json:"value"`
	// Hist is set for histograms.
	Hist *HistogramSnapshot `json:"histogram,omitempty"`
}

// Key returns the canonical series identity.
func (s SeriesSnapshot) Key() string { return seriesKey(s.Name, s.Labels) }

// Snapshot reads every series in registration order. Nil-safe.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ordered := append([]*series(nil), r.ordered...)
	r.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(ordered))
	for _, s := range ordered {
		ss := SeriesSnapshot{Name: s.name, Kind: s.kind, Help: s.help, Labels: s.labels}
		switch {
		case s.counter != nil:
			ss.Value = float64(s.counter.Load())
		case s.gauge != nil:
			ss.Value = float64(s.gauge.Load())
		case s.gaugeFn != nil:
			ss.Value = s.gaugeFn()
		case s.hist != nil:
			h := s.hist.Snapshot()
			ss.Hist = &h
			ss.Value = h.Sum
		}
		if math.IsNaN(ss.Value) || math.IsInf(ss.Value, 0) {
			ss.Value = 0
		}
		out = append(out, ss)
	}
	return out
}

// Find returns the snapshot of one series by name and exact labels
// (nil labels match the unlabelled series), or false.
func (r *Registry) Find(name string, labels map[string]string) (SeriesSnapshot, bool) {
	key := seriesKey(name, labels)
	for _, s := range r.Snapshot() {
		if s.Key() == key {
			return s, true
		}
	}
	return SeriesSnapshot{}, false
}
