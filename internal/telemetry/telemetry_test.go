package telemetry

import (
	"bufio"
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("adaudit_test_total", "a counter", nil)
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters never decrease
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("adaudit_test_active", "a gauge", nil)
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Re-registration returns the same instrument.
	if reg.Counter("adaudit_test_total", "a counter", nil) != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var v *CounterVec
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	v.With("x").Inc()
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments reported values")
	}
	var reg *Registry
	reg.Counter("adaudit_x_total", "", nil).Inc() // must not panic
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

func TestCounterVecLabelsSeries(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("adaudit_rejects_total", "rejects by class", "class")
	vec.With("decode").Add(2)
	vec.With("insert").Inc()
	vec.With("decode").Inc()
	s, ok := reg.Find("adaudit_rejects_total", map[string]string{"class": "decode"})
	if !ok || s.Value != 3 {
		t.Fatalf("decode series = %+v ok=%v, want 3", s, ok)
	}
	s, ok = reg.Find("adaudit_rejects_total", map[string]string{"class": "insert"})
	if !ok || s.Value != 1 {
		t.Fatalf("insert series = %+v ok=%v, want 1", s, ok)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("adaudit_test_seconds", "latency", []float64{0.01, 0.1, 1}, nil)
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // third bucket
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.Quantile(0.5); p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %g, want within first bucket", p50)
	}
	if p99 := s.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %g, want within (0.1, 1]", p99)
	}
	if mean := s.Mean(); math.Abs(mean-(90*0.005+10*0.5)/100) > 1e-6 {
		t.Fatalf("mean = %g", mean)
	}
}

// TestHistogramBucketsMonotone is the property test: for any batch of
// observations, cumulative bucket counts are non-decreasing, the +Inf
// bucket equals the total count, and the sum matches the observations.
func TestHistogramBucketsMonotone(t *testing.T) {
	prop := func(raw []uint32) bool {
		h, err := newHistogram(LatencyBuckets())
		if err != nil {
			return false
		}
		var want float64
		for _, r := range raw {
			// Map the random word onto (0, ~42s): exercises every
			// bucket including +Inf.
			v := float64(r) / 1e8
			want += v
			h.Observe(v)
		}
		s := h.Snapshot()
		if s.Count != uint64(len(raw)) {
			return false
		}
		cum := uint64(0)
		prev := uint64(0)
		for _, c := range s.Counts {
			cum += c
			if cum < prev {
				return false
			}
			prev = cum
		}
		if cum != s.Count {
			return false
		}
		// Sum tracked at nanosecond resolution: allow that much slack.
		return math.Abs(s.Sum-want) <= 1e-9*float64(len(raw)+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h, err := newHistogram([]float64{0.001, 0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

// promLineRe matches a sample line of the text exposition format.
var promLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$`)

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adaudit_ingested_total", "impressions committed", nil).Add(42)
	reg.Gauge("adaudit_sessions_active", "open sessions", nil).Set(3)
	reg.GaugeFunc("adaudit_uptime_seconds", "uptime", nil, func() float64 { return 1.5 })
	h := reg.Histogram("adaudit_insert_seconds", "insert latency", []float64{0.001, 0.01}, nil)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	vec := reg.CounterVec("adaudit_rejects_total", "rejects", "class")
	vec.With("decode").Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	helpCount := strings.Count(text, "# HELP adaudit_insert_seconds ")
	typeCount := strings.Count(text, "# TYPE adaudit_insert_seconds ")
	if helpCount != 1 || typeCount != 1 {
		t.Fatalf("HELP/TYPE emitted %d/%d times:\n%s", helpCount, typeCount, text)
	}
	for _, want := range []string{
		"adaudit_ingested_total 42",
		"adaudit_sessions_active 3",
		"adaudit_uptime_seconds 1.5",
		`adaudit_insert_seconds_bucket{le="0.001"} 1`,
		`adaudit_insert_seconds_bucket{le="0.01"} 2`,
		`adaudit_insert_seconds_bucket{le="+Inf"} 3`,
		"adaudit_insert_seconds_count 3",
		`adaudit_rejects_total{class="decode"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Every non-comment line parses as a sample.
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineRe.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}

func TestWriteJSONView(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adaudit_ingested_total", "", nil).Add(7)
	h := reg.Histogram("adaudit_insert_seconds", "", []float64{0.001, 0.01}, nil)
	h.Observe(0.0005)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("JSON view does not parse: %v\n%s", err, b.String())
	}
	if _, ok := out["adaudit_ingested_total"]; !ok {
		t.Fatalf("counter missing from JSON view: %s", b.String())
	}
	var hist struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
	}
	if err := json.Unmarshal(out["adaudit_insert_seconds"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 1 {
		t.Fatalf("histogram count = %d", hist.Count)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adaudit_thing_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	reg.Gauge("adaudit_thing_total", "", nil)
}

func TestSeriesKeyStable(t *testing.T) {
	a := seriesKey("m", map[string]string{"b": "2", "a": "1"})
	b := seriesKey("m", map[string]string{"a": "1", "b": "2"})
	if a != b {
		t.Fatalf("label order changed key: %q vs %q", a, b)
	}
	if a != `m{a="1",b="2"}` {
		t.Fatalf("key = %q", a)
	}
}

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("adaudit_test_exemplar_seconds", "latency with exemplar", LatencyBuckets(), nil)
	h.ObserveDuration(3 * time.Millisecond)
	if s := h.Snapshot(); s.ExemplarTraceID != "" {
		t.Fatalf("untraced observation produced exemplar %q", s.ExemplarTraceID)
	}
	h.SetExemplar(0) // no-op
	h.SetExemplar(0xdeadbeef)
	h.SetExemplar(0xcafe) // last traced observation wins
	s := h.Snapshot()
	if s.ExemplarTraceID != "000000000000cafe" {
		t.Fatalf("exemplar = %q", s.ExemplarTraceID)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# EXEMPLAR adaudit_test_exemplar_seconds trace_id=000000000000cafe") {
		t.Fatalf("prometheus text lacks exemplar comment:\n%s", sb.String())
	}

	var jb strings.Builder
	if err := reg.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal([]byte(jb.String()), &out); err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Exemplar string `json:"exemplar_trace_id"`
	}
	if err := json.Unmarshal(out["adaudit_test_exemplar_seconds"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Exemplar != "000000000000cafe" {
		t.Fatalf("JSON exemplar = %q", hist.Exemplar)
	}

	var nilH *Histogram
	nilH.SetExemplar(1) // nil-safe
}
