package adaudit_test

import (
	"fmt"
	"log"

	"adaudit"
	"adaudit/internal/adnet"
	"adaudit/internal/beacon"
)

// ExampleNewWorkspace reproduces the paper's headline finding end to
// end: run the Research-010 campaign, audit it, and report how many of
// its publishers the vendor never disclosed.
func ExampleNewWorkspace() {
	ws, err := adaudit.NewWorkspace(adaudit.Options{Seed: 1, NumPublishers: 20000})
	if err != nil {
		log.Fatal(err)
	}
	run, err := ws.Run(adnet.PaperCampaigns()[:1]) // Research-010
	if err != nil {
		log.Fatal(err)
	}
	rep, err := run.Audit()
	if err != nil {
		log.Fatal(err)
	}
	bs := rep.PerCampaign[0].BrandSafety
	fmt.Printf("vendor hid %.0f%% of delivering publishers\n",
		100*bs.FractionUnreported())
	// Output: vendor hid 46% of delivering publishers
}

// ExampleScript shows the artifact an advertiser actually ships: the
// JavaScript beacon pasted into an HTML5 creative.
func ExampleScript() {
	js, err := beacon.Script(beacon.ScriptConfig{
		CollectorURL: "wss://collector.example.org/beacon",
		CampaignID:   "spring-sale",
		CreativeID:   "banner-728x90",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(js) > 500)
	// Output: true
}
