// Package adaudit is the public API of the ad-campaign auditing system
// reproducing "Independent Auditing of Online Display Advertising
// Campaigns" (Callejo, Cuevas, Cuevas, Kotila — HotNets 2016).
//
// The paper's methodology injects a JavaScript beacon into HTML5
// display ads; the beacon reports every impression over a WebSocket to
// a central collector, which derives the facts a vendor cannot forge —
// client IP, impression timestamp, exposure time — and the resulting
// dataset lets an advertiser audit brand safety, contextual relevance,
// publisher popularity, impression quality and fraud exposure
// independently of the ad network's own reports.
//
// A Workspace wires the whole reproduction together from one seed:
//
//	ws, err := adaudit.NewWorkspace(adaudit.Options{Seed: 1})
//	run, err := ws.Run(adnet.PaperCampaigns())
//	rep, err := run.Audit()
//	run.WriteReport(os.Stdout, rep) // Tables 1-4, Figures 1-3
//
// The pieces compose individually too: beacon.Script generates the
// embeddable JavaScript for a real campaign, collector.Server terminates
// real beacon WebSockets, and audit.Auditor analyses any impression
// store — including one loaded from a snapshot produced elsewhere.
package adaudit

import (
	"fmt"
	"io"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
	"adaudit/internal/campaign"
	"adaudit/internal/collector"
	"adaudit/internal/ipmeta"
	"adaudit/internal/publisher"
	"adaudit/internal/report"
	"adaudit/internal/store"
	"adaudit/internal/trace"
)

// Options configures a Workspace.
type Options struct {
	// Seed drives every stochastic component; equal seeds replay
	// identical universes, deliveries and datasets.
	Seed int64
	// NumPublishers sizes the synthetic inventory (default 150000 — big
	// enough that most long-tail publishers receive a single impression
	// per campaign, the regime behind Figure 1's missing-publisher
	// fractions).
	NumPublishers int
	// Policy overrides the ad-network behaviour; nil uses the policy
	// calibrated to the paper's findings.
	Policy *adnet.Policy
	// Secret keys the IP anonymiser; defaults to a seed-derived key.
	Secret []byte
	// Loss overrides the measurement-loss model; nil uses the default
	// calibrated to the paper's 16.5% publisher loss.
	Loss *campaign.LossModel
	// TraceSample enables end-to-end impression tracing: 1 traces every
	// impression, N > 1 every Nth, 0 (the default) disables tracing
	// entirely — the unsampled hot path pays only nil checks. Sampled
	// traces land in the workspace's flight recorder (Tracer.Recorder).
	TraceSample int
}

// Workspace is a fully wired reproduction environment: synthetic
// publisher and IP universes, the simulated ad network, the collector
// and its impression store, and the campaign driver.
type Workspace struct {
	Seed       int64
	Publishers *publisher.Universe
	IPs        *ipmeta.Universe
	Network    *adnet.Network
	Store      *store.Store
	Collector  *collector.Collector
	Driver     *campaign.Driver
	// Tracer is non-nil when Options.TraceSample enabled tracing; its
	// Recorder holds the flight-recorder ring of completed traces.
	Tracer *trace.Tracer
}

// NewWorkspace builds the full stack from one seed.
func NewWorkspace(opts Options) (*Workspace, error) {
	if opts.NumPublishers == 0 {
		opts.NumPublishers = 150000
	}
	pubs, err := publisher.NewUniverse(publisher.Config{
		Seed:          opts.Seed,
		NumPublishers: opts.NumPublishers,
	})
	if err != nil {
		return nil, fmt.Errorf("adaudit: building publisher universe: %w", err)
	}
	ips, err := ipmeta.NewUniverse(ipmeta.UniverseConfig{Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("adaudit: building IP universe: %w", err)
	}
	network, err := adnet.New(adnet.Config{
		Seed:       opts.Seed,
		Publishers: pubs,
		IPs:        ips,
		Policy:     opts.Policy,
	})
	if err != nil {
		return nil, fmt.Errorf("adaudit: building ad network: %w", err)
	}
	st := store.New()
	secret := opts.Secret
	if len(secret) == 0 {
		secret = []byte(fmt.Sprintf("adaudit-dataset-%d", opts.Seed))
	}
	var tracer *trace.Tracer
	if opts.TraceSample > 0 {
		tracer = trace.NewTracer(trace.NewRecorder(trace.DefaultCapacity), opts.TraceSample)
	}
	coll, err := collector.New(collector.Config{
		Store:      st,
		IPDB:       ips.DB,
		Classifier: &ipmeta.Classifier{DB: ips.DB, DenyList: ips.DenyList, ManualVerify: ips.ManualVerify},
		Anonymizer: ipmeta.NewAnonymizer(secret),
		Tracer:     tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("adaudit: building collector: %w", err)
	}
	loss := campaign.DefaultLossModel()
	if opts.Loss != nil {
		loss = *opts.Loss
	}
	return &Workspace{
		Seed:       opts.Seed,
		Publishers: pubs,
		IPs:        ips,
		Network:    network,
		Store:      st,
		Collector:  coll,
		Tracer:     tracer,
		Driver: &campaign.Driver{
			Network:   network,
			Collector: coll,
			Loss:      loss,
			Seed:      opts.Seed,
		},
	}, nil
}

// Run executes the campaigns end to end: network delivery, beacon
// replay with measurement loss, collection and storage.
func (ws *Workspace) Run(cs []adnet.Campaign) (*Run, error) {
	outcome, err := ws.Driver.RunAll(cs)
	if err != nil {
		return nil, err
	}
	return &Run{ws: ws, Campaigns: cs, Outcome: outcome}, nil
}

// Auditor returns an auditor over the workspace's dataset, using the
// publisher universe as the metadata source (the stand-in for the
// AdWords placement tool + Alexa lookups the paper performs). Its
// stage-latency histograms and audit counters land in the collector's
// telemetry registry, so `adsim -metrics` captures the analysis side
// of a run alongside ingest.
func (ws *Workspace) Auditor() (*audit.Auditor, error) {
	a, err := audit.New(ws.Store, audit.UniverseMetadata{Universe: ws.Publishers})
	if err != nil {
		return nil, err
	}
	a.Instrument(ws.Collector.Telemetry())
	return a, nil
}

// Run is a completed campaign-set execution.
type Run struct {
	ws        *Workspace
	Campaigns []adnet.Campaign
	Outcome   *campaign.RunOutcome
}

// Audit runs the paper's full analysis suite over the dataset.
func (r *Run) Audit() (*audit.FullReport, error) {
	auditor, err := r.ws.Auditor()
	if err != nil {
		return nil, err
	}
	inputs := make([]audit.CampaignInput, 0, len(r.Campaigns))
	reports := r.Outcome.Reports()
	for _, c := range r.Campaigns {
		inputs = append(inputs, audit.CampaignInput{
			ID:       c.ID,
			Keywords: c.Keywords,
			Report:   reports[c.ID],
		})
	}
	return auditor.FullAudit(inputs)
}

// WriteReport renders every table and figure of the paper's evaluation
// for this run.
func (r *Run) WriteReport(w io.Writer, rep *audit.FullReport) error {
	return report.Full(w, r.Campaigns, rep)
}
