package adaudit

import (
	"bytes"
	"reflect"
	"testing"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
)

// TestFullAuditParallelMatchesSerial is the end-to-end determinism
// gate for the parallel audit engine: on the seeded 8-campaign paper
// workload, the fanned-out audit must produce a FullReport deep-equal
// to the serial engine's — and render to byte-identical output — on
// every repetition. Run under -race (scripts/check.sh does) this also
// exercises the engine's concurrency on the real dataset.
func TestFullAuditParallelMatchesSerial(t *testing.T) {
	// A reduced publisher universe keeps the 10 repetitions fast under
	// -race without changing the campaign mix or analysis coverage.
	ws, err := NewWorkspace(Options{Seed: 1, NumPublishers: 20000})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ws.Run(adnet.PaperCampaigns())
	if err != nil {
		t.Fatal(err)
	}
	auditor, err := ws.Auditor()
	if err != nil {
		t.Fatal(err)
	}
	reports := run.Outcome.Reports()
	inputs := make([]audit.CampaignInput, 0, len(run.Campaigns))
	for _, c := range run.Campaigns {
		inputs = append(inputs, audit.CampaignInput{
			ID: c.ID, Keywords: c.Keywords, Report: reports[c.ID],
		})
	}

	want, err := auditor.FullAuditSerial(inputs)
	if err != nil {
		t.Fatal(err)
	}
	var wantText bytes.Buffer
	if err := run.WriteReport(&wantText, want); err != nil {
		t.Fatal(err)
	}

	reps := 10
	if testing.Short() {
		reps = 3
	}
	auditor.Parallelism = 8 // real fan-out even on single-CPU machines
	for rep := 0; rep < reps; rep++ {
		got, err := auditor.FullAudit(inputs)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rep %d: parallel FullReport diverges from serial", rep)
		}
		var gotText bytes.Buffer
		if err := run.WriteReport(&gotText, got); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if !bytes.Equal(gotText.Bytes(), wantText.Bytes()) {
			t.Fatalf("rep %d: rendered report not byte-identical to serial", rep)
		}
	}
}
