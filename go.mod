module adaudit

go 1.22
