#!/bin/sh
# check.sh — the repo's CI gate. Builds everything, vets everything,
# runs the full test suite, and re-runs the concurrency-sensitive
# packages (collector, wsproto, store, telemetry) under the race
# detector. Usage:
#
#   scripts/check.sh                # vet + tests + race
#   scripts/check.sh -bench         # also run the telemetry-overhead benchmarks
#   scripts/check.sh -chaos         # also run the fault-injection suite under -race
#   scripts/check.sh -bench-compare # also run the audit perf gate (scripts/bench_compare.sh)
set -eu
cd "$(dirname "$0")/.."

RACE_PKGS="./internal/collector/ ./internal/wsproto/ ./internal/store/ ./internal/telemetry/ ./internal/faultnet/ ./internal/beacon/ ./internal/semsim/ ./internal/audit/"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race $RACE_PKGS"
go test -race $RACE_PKGS

# The parallel audit engine's end-to-end determinism gate: serial vs
# fanned-out FullAudit on the seeded paper workload, under the race
# detector (-short trims repetitions to keep the gate fast).
echo "==> go test -race -run TestFullAuditParallelMatchesSerial -short ."
go test -race -run TestFullAuditParallelMatchesSerial -short .

if [ "${1:-}" = "-bench" ]; then
    echo "==> telemetry overhead: BenchmarkCollectorIngest vs Uninstrumented"
    go test -run '^$' -bench 'BenchmarkCollectorIngest' -benchmem -count 3 \
        ./internal/collector/
fi

if [ "${1:-}" = "-chaos" ]; then
    # The chaos campaign needs real time for kills and reconnects, so it
    # skips itself under -short; this is the explicit full-fat run.
    echo "==> chaos suite (fault injection + WAL crash recovery, -race)"
    go test -race -count 1 ./internal/faultnet/
    go test -race -count 1 -run 'TestChaos|TestReportReconnects|TestWAL' \
        ./internal/collector/ ./internal/beacon/ ./internal/store/ -v
fi

if [ "${1:-}" = "-bench-compare" ]; then
    sh scripts/bench_compare.sh
fi

echo "==> ok"
