#!/bin/sh
# check.sh — the repo's CI gate. Builds everything, vets everything,
# runs the full test suite, and re-runs the concurrency-sensitive
# packages (collector, wsproto, store, telemetry) under the race
# detector. Usage:
#
#   scripts/check.sh          # vet + tests + race
#   scripts/check.sh -bench   # also run the telemetry-overhead benchmarks
set -eu
cd "$(dirname "$0")/.."

RACE_PKGS="./internal/collector/ ./internal/wsproto/ ./internal/store/ ./internal/telemetry/"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race $RACE_PKGS"
go test -race $RACE_PKGS

if [ "${1:-}" = "-bench" ]; then
    echo "==> telemetry overhead: BenchmarkCollectorIngest vs Uninstrumented"
    go test -run '^$' -bench 'BenchmarkCollectorIngest' -benchmem -count 3 \
        ./internal/collector/
fi

echo "==> ok"
