#!/bin/sh
# check.sh — the repo's CI gate. Builds everything, vets everything,
# runs the full test suite, and re-runs the concurrency-sensitive
# packages (collector, wsproto, store, telemetry) under the race
# detector. Usage:
#
#   scripts/check.sh                # vet + tests + race
#   scripts/check.sh -bench         # also run the telemetry-overhead benchmarks
#   scripts/check.sh -chaos         # also run the fault-injection suite under -race
#   scripts/check.sh -bench-compare # also run the audit perf gate (scripts/bench_compare.sh)
#   scripts/check.sh -sim           # also run the simulation sweep (25 seeds, -race)
#                                   # plus the trace-digest determinism gate
#   scripts/check.sh -adversarial   # also run the adversarial scenario pack under -race
#                                   # (attack oracles, detector-disable gates, stream parity)
#   scripts/check.sh -sharded       # also run the sharded-collector suite under -race
#                                   # (shard-merge equality, router chaos, sharded sim oracle)
#   scripts/check.sh -fuzz-smoke    # also fuzz every target 30s from the committed corpora
set -eu
cd "$(dirname "$0")/.."

RACE_PKGS="./internal/collector/ ./internal/wsproto/ ./internal/store/ ./internal/telemetry/ ./internal/faultnet/ ./internal/beacon/ ./internal/semsim/ ./internal/audit/ ./internal/adnet/ ./internal/simclock/ ./internal/simtest/ ./internal/streamaudit/ ./internal/trace/ ./internal/logutil/ ./internal/gateway/ ./internal/trunk/ ./internal/router/ ./internal/shardmerge/"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race $RACE_PKGS"
go test -race $RACE_PKGS

# The parallel audit engine's end-to-end determinism gate: serial vs
# fanned-out FullAudit on the seeded paper workload, under the race
# detector (-short trims repetitions to keep the gate fast).
echo "==> go test -race -run TestFullAuditParallelMatchesSerial -short ."
go test -race -run TestFullAuditParallelMatchesSerial -short .

if [ "${1:-}" = "-bench" ]; then
    echo "==> telemetry overhead: BenchmarkCollectorIngest vs Uninstrumented"
    go test -run '^$' -bench 'BenchmarkCollectorIngest' -benchmem -count 3 \
        ./internal/collector/
fi

if [ "${1:-}" = "-chaos" ]; then
    # The chaos campaign needs real time for kills and reconnects, so it
    # skips itself under -short; this is the explicit full-fat run.
    echo "==> chaos suite (fault injection + WAL crash recovery, -race)"
    go test -race -count 1 ./internal/faultnet/
    go test -race -count 1 -run 'TestChaos|TestReportReconnects|TestWAL' \
        ./internal/collector/ ./internal/beacon/ ./internal/store/ -v
    # Edge-tier chaos: both legs fault-injected around the gateway with
    # a full collector restart mid-run, plus the simtest gateway wire
    # schedules (collector restart behind the gateway, oracle
    # invariants on the survivor).
    echo "==> gateway chaos (both legs + collector restart, -race)"
    go test -race -count 1 -run 'TestChaosGatewayZeroLoss' ./internal/gateway/ -v
    go test -race -count 1 -run 'TestSimGatewayWire' ./internal/simtest/ -v
fi

if [ "${1:-}" = "-bench-compare" ]; then
    sh scripts/bench_compare.sh
fi

if [ "${1:-}" = "-sim" ]; then
    # Deterministic simulation sweep: 25 seeded schedules through the
    # full ingest -> store -> audit pipeline under -race, with the
    # invariant oracle watching (internal/simtest). A failure prints a
    # one-line reproducer: go test ./internal/simtest -run TestSim -seed=<n>
    echo "==> simulation sweep (25 seeds, -race)"
    DIGESTS=$(mktemp -d)
    trap 'rm -rf "$DIGESTS"' EXIT
    go test -race -count 1 ./internal/simtest/ \
        -run 'TestSim$' -seeds=25 -digest-out="$DIGESTS/run1"

    # Determinism gate: the same 25 seeds replayed without -race must
    # produce byte-identical trace digests — the property that makes
    # every reproducer seed trustworthy.
    echo "==> trace-digest determinism gate (25 seeds, two runs)"
    go test -count 1 ./internal/simtest/ \
        -run 'TestSim$' -seeds=25 -digest-out="$DIGESTS/run2" >/dev/null
    if ! cmp -s "$DIGESTS/run1" "$DIGESTS/run2"; then
        echo "FAIL: trace digests differ between identical runs" >&2
        diff "$DIGESTS/run1" "$DIGESTS/run2" >&2 || true
        exit 1
    fi
fi

if [ "${1:-}" = "-adversarial" ]; then
    # The adversarial scenario pack: seeded attack schedules with
    # oracle-backed precision/recall checks (the recall side must fail
    # when a detector is disabled — TestSimAdversarialDisabledDetector
    # proves the invariants have teeth), the streaming engine's
    # deep-equal parity on adversarial workloads, the adversary layer's
    # ground-truth unit tests, and the adsim CLI scenario run.
    echo "==> adversarial scenario pack (-race)"
    go test -race -count 1 -run 'TestSimAdversarial' ./internal/simtest/
    go test -race -count 1 -run 'TestAdversarialDimensionsParity' ./internal/streamaudit/
    go test -race -count 1 -run 'TestAdversary|TestHonestReportSellers' ./internal/adnet/
    go test -race -count 1 \
        -run 'TestCadenceCV|TestSellerAudit|TestPoolingFromReport|TestBehaviorFromState' \
        ./internal/audit/
    go test -race -count 1 -run 'TestRunAdversarialScenario' ./cmd/adsim/
fi

if [ "${1:-}" = "-sharded" ]; then
    # The sharded collector tier: the shard-merge union must reproduce
    # the single-store batch audit byte-for-byte (2/4/8 shards plus an
    # adversarial workload), the router must survive a shard being
    # killed and WAL-recovered mid-run with zero loss by nonce, the sim
    # oracle must hold the same equality over post-hoc partitions
    # without perturbing trace digests, and the adsim -shards replay
    # must pass its in-process placement + merge verdicts.
    echo "==> sharded collector suite (-race)"
    go test -race -count 1 ./internal/shardmerge/ -v
    go test -race -count 1 ./internal/router/ -v
    go test -race -count 1 -run 'TestSimSharded|TestShardsDigestDeterminism' \
        ./internal/simtest/ -v
    go test -race -count 1 -run 'TestRunShardedReplay' ./cmd/adsim/ -v
fi

if [ "${1:-}" = "-fuzz-smoke" ]; then
    # 30 s of native fuzzing per target, seeded from the committed
    # corpora under testdata/fuzz/ — any crasher fails the stage.
    echo "==> fuzz smoke (30s per target)"
    for target in \
        "FuzzReadFrame ./internal/wsproto/" \
        "FuzzDecode ./internal/beacon/" \
        "FuzzDecodeBinary ./internal/beacon/" \
        "FuzzWireEquivalence ./internal/beacon/" \
        "FuzzRecoverWAL ./internal/store/" \
        "FuzzReadSnapshot ./internal/store/" \
        "FuzzQueryAPI ./internal/collector/"; do
        set -- $target
        echo "==> go test -fuzz $1 -fuzztime 30s $2"
        go test -run '^$' -fuzz "$1\$" -fuzztime 30s "$2"
    done
fi

echo "==> ok"
