#!/bin/sh
# bench_compare.sh — the audit-engine performance gate. Runs the
# serial/parallel FullAudit benchmarks plus the allocation-sensitive
# Table 2 context benchmark, summarises them benchstat-style (mean over
# -count runs) into BENCH_audit.json, and fails if allocs/op of
# BenchmarkTable2Context regressed more than 10% against the committed
# baseline. Plain POSIX sh + awk — no benchstat dependency.
#
# Also runs the streaming-audit apply benchmark
# (internal/streamaudit.BenchmarkStreamApply) and summarises it into
# BENCH_stream.json — per-delta apply cost and derived deltas/sec for
# the incremental engine.
#
# Also runs the impression-tracing overhead gate: the ingest funnel
# with a tracer attached but no sampled payloads (BenchmarkIngestUntraced)
# must stay within 5% of the tracer-less funnel
# (BenchmarkCollectorIngestUninstrumented); the fully traced funnel
# (BenchmarkIngestTraced) is recorded alongside. Summary lands in
# BENCH_trace.json.
#
# Usage:
#   scripts/bench_compare.sh            # run, compare, rewrite BENCH_audit.json + BENCH_stream.json
#   COUNT=5 scripts/bench_compare.sh    # more repetitions
#
# The raw `go test -bench` output is appended to bench_output.txt so the
# repo keeps a human-readable record alongside the JSON.
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
# Every BENCH_*.json records gomaxprocs (parsed off the benchmark name
# suffix go test emits) and the machine's cpu count, so numbers from
# different containers are comparable. The FullAudit parallel-speedup
# gate is only meaningful on multi-core hardware: on 1 core the gate
# FAILS (a 1-core "speedup" is noise, not a measurement) unless
# ALLOW_SINGLE_CORE=1, which records the speedup as invalid instead.
CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
JSON=BENCH_audit.json
RAW=bench_output.txt
BENCHES='BenchmarkFullAuditSerial$|BenchmarkFullAuditParallel$|BenchmarkTable2Context$'

table2_allocs() {
    sed -n 's/.*"name": "BenchmarkTable2Context".*"allocs_per_op": \([0-9][0-9]*\).*/\1/p' "$1"
}

# Remember the committed baseline before overwriting it (git holds the
# pristine copy if this run fails the gate).
baseline_allocs=""
if [ -f "$JSON" ]; then
    baseline_allocs=$(table2_allocs "$JSON")
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench ($COUNT runs each: FullAuditSerial, FullAuditParallel, Table2Context)"
go test -run '^$' -bench "$BENCHES" -benchmem -count "$COUNT" . | tee "$tmp"

{
    echo "# bench_compare $(go env GOOS)/$(go env GOARCH), GOMAXPROCS from go test, count=$COUNT"
    grep '^Benchmark' "$tmp"
} >> "$RAW"

# Summarise: mean ns/op, B/op, allocs/op per benchmark (suffix -N
# stripped), preserving input order.
awk -v cpus="$CPUS" '
/^Benchmark/ {
    name = $1
    gmp = 1
    if (match(name, /-[0-9]+$/)) { gmp = substr(name, RSTART + 1) + 0 }
    if (gmp > gomaxprocs) { gomaxprocs = gmp }
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op")     { ns[name] += $i;     runs[name]++ }
        if (unit == "B/op")      { bytes[name] += $i }
        if (unit == "allocs/op") { allocs[name] += $i }
    }
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (k = 1; k <= n; k++) {
        name = order[k]
        r = runs[name]; if (r == 0) continue
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n", \
            name, r, ns[name] / r, bytes[name] / r, allocs[name] / r, (k < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"gomaxprocs\": %d,\n  \"cpus\": %d,\n", gomaxprocs, cpus
    serial = ns["BenchmarkFullAuditSerial"] / runs["BenchmarkFullAuditSerial"]
    par = ns["BenchmarkFullAuditParallel"] / runs["BenchmarkFullAuditParallel"]
    printf "  \"parallel_speedup\": %.3f,\n", serial / par
    printf "  \"parallel_speedup_valid\": %s\n}\n", (gomaxprocs >= 2 ? "true" : "false")
}' "$tmp" > "$JSON"

# The multi-core gate: the ROADMAP targets >=3x FullAudit speedup on 4
# cores. A 1-core container cannot measure a speedup at all, so the
# honest outcomes are: fail loudly (default), or record the number as
# invalid (ALLOW_SINGLE_CORE=1) so no trajectory mistakes it for data.
gmp=$(sed -n 's/.*"gomaxprocs": \([0-9][0-9]*\).*/\1/p' "$JSON" | head -n 1)
speedup=$(sed -n 's/.*"parallel_speedup": \([0-9.]*\).*/\1/p' "$JSON")
if [ "$gmp" -lt 2 ]; then
    if [ "${ALLOW_SINGLE_CORE:-0}" = "1" ]; then
        echo "==> WARNING: 1-core run; parallel_speedup ${speedup}x recorded as INVALID (>=3x gate needs >=4 cores)"
    else
        echo "bench_compare: parallel_speedup computed on 1 core ($speedup x) is not a measurement; rerun on >=4 cores or set ALLOW_SINGLE_CORE=1" >&2
        exit 1
    fi
elif [ "$gmp" -ge 4 ]; then
    echo "==> FullAudit parallel speedup: ${speedup}x on $gmp procs (target >= 3.0)"
    awk -v s="$speedup" 'BEGIN {
        if (s < 3.0) {
            printf "bench_compare: parallel speedup %.3fx below the 3x-on-4-cores target\n", s
            exit 1
        }
    }' || exit 1
else
    echo "==> FullAudit parallel speedup: ${speedup}x on $gmp procs (3x target is defined at >= 4 cores; not gated)"
fi

echo "==> wrote $JSON"

new_allocs=$(table2_allocs "$JSON")

if [ -z "$new_allocs" ]; then
    echo "bench_compare: BenchmarkTable2Context missing from results" >&2
    exit 1
fi

if [ -n "$baseline_allocs" ]; then
    echo "==> Table2Context allocs/op: baseline $baseline_allocs, now $new_allocs"
    awk -v old="$baseline_allocs" -v cur="$new_allocs" 'BEGIN {
        if (old > 0 && cur > old * 1.10) {
            printf "bench_compare: allocation regression: %.0f -> %.0f allocs/op (> 10%%)\n", old, cur
            exit 1
        }
    }' || exit 1
else
    echo "==> no committed baseline; $JSON is the new baseline"
fi

# Streaming-audit apply throughput: mean per-delta cost of the
# incremental engine, and the deltas/sec it implies.
STREAM_JSON=BENCH_stream.json
stream_tmp=$(mktemp)
trap 'rm -f "$tmp" "$stream_tmp"' EXIT

echo "==> go test -bench BenchmarkStreamApply ($COUNT runs) ./internal/streamaudit/"
go test -run '^$' -bench 'BenchmarkStreamApply$' -benchmem -count "$COUNT" \
    ./internal/streamaudit/ | tee "$stream_tmp"

{
    echo "# bench_compare(stream) $(go env GOOS)/$(go env GOARCH), count=$COUNT"
    grep '^Benchmark' "$stream_tmp"
} >> "$RAW"

awk -v cpus="$CPUS" '
/^Benchmark/ {
    name = $1
    gmp = 1
    if (match(name, /-[0-9]+$/)) { gmp = substr(name, RSTART + 1) + 0 }
    if (gmp > gomaxprocs) { gomaxprocs = gmp }
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op")     { ns[name] += $i;     runs[name]++ }
        if (unit == "B/op")      { bytes[name] += $i }
        if (unit == "allocs/op") { allocs[name] += $i }
    }
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (k = 1; k <= n; k++) {
        name = order[k]
        r = runs[name]; if (r == 0) continue
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n", \
            name, r, ns[name] / r, bytes[name] / r, allocs[name] / r, (k < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"gomaxprocs\": %d,\n  \"cpus\": %d,\n", gomaxprocs, cpus
    apply = ns["BenchmarkStreamApply"] / runs["BenchmarkStreamApply"]
    printf "  \"deltas_per_sec\": %.0f\n}\n", 1e9 / apply
}' "$stream_tmp" > "$STREAM_JSON"

echo "==> wrote $STREAM_JSON"

if ! grep -q '"name": "BenchmarkStreamApply"' "$STREAM_JSON"; then
    echo "bench_compare: BenchmarkStreamApply missing from results" >&2
    exit 1
fi

# Impression-tracing overhead: an attached-but-idle tracer must cost
# the unsampled ingest path (near) nothing.
TRACE_JSON=BENCH_trace.json
trace_tmp=$(mktemp)
trap 'rm -f "$tmp" "$stream_tmp" "$trace_tmp"' EXIT

echo "==> go test -bench trace overhead ($COUNT runs: IngestUninstrumented, IngestUntraced, IngestTraced) ./internal/collector/"
go test -run '^$' \
    -bench 'BenchmarkCollectorIngestUninstrumented$|BenchmarkIngestUntraced$|BenchmarkIngestTraced$' \
    -benchmem -count "$COUNT" ./internal/collector/ | tee "$trace_tmp"

{
    echo "# bench_compare(trace) $(go env GOOS)/$(go env GOARCH), count=$COUNT"
    grep '^Benchmark' "$trace_tmp"
} >> "$RAW"

awk -v cpus="$CPUS" '
/^Benchmark/ {
    name = $1
    gmp = 1
    if (match(name, /-[0-9]+$/)) { gmp = substr(name, RSTART + 1) + 0 }
    if (gmp > gomaxprocs) { gomaxprocs = gmp }
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op")     { ns[name] += $i;     runs[name]++ }
        if (unit == "B/op")      { bytes[name] += $i }
        if (unit == "allocs/op") { allocs[name] += $i }
    }
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (k = 1; k <= n; k++) {
        name = order[k]
        r = runs[name]; if (r == 0) continue
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n", \
            name, r, ns[name] / r, bytes[name] / r, allocs[name] / r, (k < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"gomaxprocs\": %d,\n  \"cpus\": %d,\n", gomaxprocs, cpus
    base = ns["BenchmarkCollectorIngestUninstrumented"] / runs["BenchmarkCollectorIngestUninstrumented"]
    untraced = ns["BenchmarkIngestUntraced"] / runs["BenchmarkIngestUntraced"]
    printf "  \"untraced_overhead\": %.3f\n}\n", untraced / base
}' "$trace_tmp" > "$TRACE_JSON"

echo "==> wrote $TRACE_JSON"

overhead=$(sed -n 's/.*"untraced_overhead": \([0-9.]*\).*/\1/p' "$TRACE_JSON")
if [ -z "$overhead" ]; then
    echo "bench_compare: trace benchmarks missing from results" >&2
    exit 1
fi
echo "==> untraced ingest overhead vs tracer-less funnel: ${overhead}x (budget 1.05)"
awk -v r="$overhead" 'BEGIN {
    if (r > 1.05) {
        printf "bench_compare: untraced tracing overhead %.3fx exceeds the 5%% budget\n", r
        exit 1
    }
}' || exit 1

# Edge gateway forwarding vs the direct ingest path: the gateway hop
# is allowed to cost whatever the extra network leg costs, but adding
# the gateway tier must not make the direct (no-gateway) path itself
# more expensive. The gate is on allocs/op of BenchmarkIngest — the
# direct funnel — against the committed BENCH_gateway.json baseline;
# allocation counts are stable across machines where ns/op is not.
GW_JSON=BENCH_gateway.json
gw_tmp=$(mktemp)
trap 'rm -f "$tmp" "$stream_tmp" "$trace_tmp" "$gw_tmp"' EXIT

direct_allocs() {
    sed -n 's/.*"name": "BenchmarkIngest",.*"allocs_per_op": \([0-9][0-9]*\).*/\1/p' "$1"
}

binary_allocs() {
    sed -n 's/.*"name": "BenchmarkIngestBinary",.*"allocs_per_op": \([0-9][0-9]*\).*/\1/p' "$1"
}

baseline_direct=""
if [ -f "$GW_JSON" ]; then
    baseline_direct=$(direct_allocs "$GW_JSON")
fi

echo "==> go test -bench BenchmarkGatewayForward ($COUNT runs) ./internal/gateway/"
go test -run '^$' -bench 'BenchmarkGatewayForward$' -benchmem -count "$COUNT" \
    ./internal/gateway/ 2>/dev/null | grep -E '^Benchmark|^PASS|^ok' | tee "$gw_tmp"
echo "==> go test -bench direct path ($COUNT runs: Ingest, IngestBinary, WebSocketSession) ./internal/collector/"
go test -run '^$' -bench 'BenchmarkIngest$|BenchmarkIngestBinary$|BenchmarkWebSocketSession$' -benchmem -count "$COUNT" \
    ./internal/collector/ | tee -a "$gw_tmp"

{
    echo "# bench_compare(gateway) $(go env GOOS)/$(go env GOARCH), count=$COUNT"
    grep '^Benchmark' "$gw_tmp"
} >> "$RAW"

awk -v cpus="$CPUS" '
/^Benchmark/ {
    name = $1
    gmp = 1
    if (match(name, /-[0-9]+$/)) { gmp = substr(name, RSTART + 1) + 0 }
    if (gmp > gomaxprocs) { gomaxprocs = gmp }
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op")     { ns[name] += $i;     runs[name]++ }
        if (unit == "B/op")      { bytes[name] += $i }
        if (unit == "allocs/op") { allocs[name] += $i }
    }
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (k = 1; k <= n; k++) {
        name = order[k]
        r = runs[name]; if (r == 0) continue
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n", \
            name, r, ns[name] / r, bytes[name] / r, allocs[name] / r, (k < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"gomaxprocs\": %d,\n  \"cpus\": %d,\n", gomaxprocs, cpus
    fwd = ns["BenchmarkGatewayForward"] / runs["BenchmarkGatewayForward"]
    direct = ns["BenchmarkWebSocketSession"] / runs["BenchmarkWebSocketSession"]
    printf "  \"gateway_hop_overhead\": %.3f\n}\n", fwd / direct
}' "$gw_tmp" > "$GW_JSON"

echo "==> wrote $GW_JSON"

new_direct=$(direct_allocs "$GW_JSON")
if [ -z "$new_direct" ]; then
    echo "bench_compare: BenchmarkIngest missing from gateway comparison results" >&2
    exit 1
fi
if ! grep -q '"name": "BenchmarkGatewayForward"' "$GW_JSON"; then
    echo "bench_compare: BenchmarkGatewayForward missing from results" >&2
    exit 1
fi

# Binary wire path: steady-state budget is an absolute <= 1 alloc/op
# (the amortised store append), not a relative baseline — the whole
# point of the pooled decode + intern path.
bin_allocs=$(binary_allocs "$GW_JSON")
if [ -z "$bin_allocs" ]; then
    echo "bench_compare: BenchmarkIngestBinary missing from results" >&2
    exit 1
fi
echo "==> binary ingest path: $bin_allocs allocs/op (budget <= 1)"
if [ "$bin_allocs" -gt 1 ]; then
    echo "bench_compare: binary ingest path costs $bin_allocs allocs/op, budget is 1" >&2
    exit 1
fi

if [ -n "$baseline_direct" ]; then
    echo "==> direct ingest allocs/op: baseline $baseline_direct, now $new_direct (budget 5%)"
    awk -v old="$baseline_direct" -v cur="$new_direct" 'BEGIN {
        if (old > 0 && cur > old * 1.05) {
            printf "bench_compare: direct ingest path regressed: %.0f -> %.0f allocs/op (> 5%%)\n", old, cur
            exit 1
        }
    }' || exit 1
else
    echo "==> no committed direct-path baseline; $GW_JSON is the new baseline"
fi

# Router forwarding vs the direct ingest path: one full beacon session
# through the sharded front tier (router trunk hop included) against
# the same session straight into a collector. The hop is expected to
# cost a network leg; what is gated is the router's own allocation
# footprint — allocs/op of BenchmarkRouterForward against the committed
# BENCH_router.json baseline, 10% budget, same rationale as the
# Table2Context gate. The direct-path divisor is reused from the
# gateway section's run above rather than re-measured.
RT_JSON=BENCH_router.json
rt_tmp=$(mktemp)
trap 'rm -f "$tmp" "$stream_tmp" "$trace_tmp" "$gw_tmp" "$rt_tmp"' EXIT

router_allocs() {
    sed -n 's/.*"name": "BenchmarkRouterForward",.*"allocs_per_op": \([0-9][0-9]*\).*/\1/p' "$1"
}

baseline_router=""
if [ -f "$RT_JSON" ]; then
    baseline_router=$(router_allocs "$RT_JSON")
fi

echo "==> go test -bench BenchmarkRouterForward ($COUNT runs) ./internal/router/"
go test -run '^$' -bench 'BenchmarkRouterForward$' -benchmem -count "$COUNT" \
    ./internal/router/ 2>/dev/null | grep -E '^Benchmark|^PASS|^ok' | tee "$rt_tmp"
grep '^BenchmarkWebSocketSession' "$gw_tmp" >> "$rt_tmp"

{
    echo "# bench_compare(router) $(go env GOOS)/$(go env GOARCH), count=$COUNT"
    grep '^Benchmark' "$rt_tmp"
} >> "$RAW"

awk -v cpus="$CPUS" '
/^Benchmark/ {
    name = $1
    gmp = 1
    if (match(name, /-[0-9]+$/)) { gmp = substr(name, RSTART + 1) + 0 }
    if (gmp > gomaxprocs) { gomaxprocs = gmp }
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op")     { ns[name] += $i;     runs[name]++ }
        if (unit == "B/op")      { bytes[name] += $i }
        if (unit == "allocs/op") { allocs[name] += $i }
    }
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (k = 1; k <= n; k++) {
        name = order[k]
        r = runs[name]; if (r == 0) continue
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n", \
            name, r, ns[name] / r, bytes[name] / r, allocs[name] / r, (k < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"gomaxprocs\": %d,\n  \"cpus\": %d,\n", gomaxprocs, cpus
    fwd = ns["BenchmarkRouterForward"] / runs["BenchmarkRouterForward"]
    direct = ns["BenchmarkWebSocketSession"] / runs["BenchmarkWebSocketSession"]
    printf "  \"router_hop_overhead\": %.3f\n}\n", fwd / direct
}' "$rt_tmp" > "$RT_JSON"

echo "==> wrote $RT_JSON"

new_router=$(router_allocs "$RT_JSON")
if [ -z "$new_router" ]; then
    echo "bench_compare: BenchmarkRouterForward missing from results" >&2
    exit 1
fi
if ! grep -q '"name": "BenchmarkWebSocketSession"' "$RT_JSON"; then
    echo "bench_compare: BenchmarkWebSocketSession missing from router comparison results" >&2
    exit 1
fi

if [ -n "$baseline_router" ]; then
    echo "==> router forward allocs/op: baseline $baseline_router, now $new_router (budget 10%)"
    awk -v old="$baseline_router" -v cur="$new_router" 'BEGIN {
        if (old > 0 && cur > old * 1.10) {
            printf "bench_compare: router forward path regressed: %.0f -> %.0f allocs/op (> 10%%)\n", old, cur
            exit 1
        }
    }' || exit 1
else
    echo "==> no committed router baseline; $RT_JSON is the new baseline"
fi

echo "==> bench-compare ok"
