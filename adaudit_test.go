package adaudit

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"adaudit/internal/adnet"
	"adaudit/internal/audit"
)

// paperRun executes the full Table 1 workload once per test binary; the
// shape assertions below all read from it.
var paperRunCache struct {
	run *Run
	rep *audit.FullReport
}

func paperRun(t *testing.T) (*Run, *audit.FullReport) {
	t.Helper()
	if paperRunCache.run != nil {
		return paperRunCache.run, paperRunCache.rep
	}
	ws, err := NewWorkspace(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ws.Run(adnet.PaperCampaigns())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Audit()
	if err != nil {
		t.Fatal(err)
	}
	paperRunCache.run, paperRunCache.rep = run, rep
	return run, rep
}

func campaignAudit(t *testing.T, rep *audit.FullReport, id string) audit.CampaignAudit {
	t.Helper()
	for _, ca := range rep.PerCampaign {
		if ca.ID == id {
			return ca
		}
	}
	t.Fatalf("campaign %s missing from report", id)
	return audit.CampaignAudit{}
}

func TestWorkloadScaleMatchesPaper(t *testing.T) {
	run, _ := paperRun(t)
	// "around 160K ad impressions displayed in more than 7K publishers":
	// we deliver the exact Table 1 impression counts; the logged subset
	// loses the §3.1 measurement losses.
	total := 0
	for _, c := range run.Campaigns {
		total += c.Impressions
	}
	if total != 162148 {
		t.Fatalf("table 1 impressions = %d", total)
	}
	logged := run.Outcome.TotalLogged()
	if logged < 100000 || logged > 155000 {
		t.Fatalf("logged impressions = %d, want most of 162K minus losses", logged)
	}
}

func TestFigure1Shapes(t *testing.T) {
	_, rep := paperRun(t)
	agg := rep.Aggregate

	// Headline: the vendor fails to report a large share of the
	// publishers the audit observed (paper: 57%).
	if f := agg.FractionUnreported(); f < 0.40 || f > 0.65 {
		t.Fatalf("aggregate unreported fraction = %v, want ~0.57", f)
	}
	// The audit's own loss (paper footnote: 16.5%).
	if f := agg.FractionAuditMissed(); f < 0.08 || f > 0.25 {
		t.Fatalf("aggregate audit-missed fraction = %v, want ~0.165", f)
	}
	// General-005 is the worst-reported campaign (paper: 75%).
	g005 := campaignAudit(t, rep, "General-005").BrandSafety
	if f := g005.FractionUnreported(); f < 0.60 || f > 0.90 {
		t.Fatalf("General-005 unreported fraction = %v, want ~0.75", f)
	}
	for _, ca := range rep.PerCampaign {
		if ca.ID == "General-005" || ca.ID == "Research-010" {
			continue // Research-010 is small and noisy; G-005 is the reference max
		}
		if ca.BrandSafety.FractionUnreported() >= g005.FractionUnreported() {
			t.Fatalf("%s unreported (%v) exceeds General-005 (%v)",
				ca.ID, ca.BrandSafety.FractionUnreported(), g005.FractionUnreported())
		}
	}
	// anonymous.google cannot explain the gap: the audit-only publisher
	// count far exceeds the anonymous impression count (paper's
	// General-005 argument).
	if int64(len(g005.AuditOnly)) <= g005.AnonymousImpressions {
		t.Fatalf("General-005: %d audit-only publishers vs %d anonymous impressions — anonymity would explain the gap",
			len(g005.AuditOnly), g005.AnonymousImpressions)
	}
}

func TestTable2Shapes(t *testing.T) {
	_, rep := paperRun(t)
	tol := func(id string, auditLo, auditHi, vendorLo, vendorHi float64) {
		ca := campaignAudit(t, rep, id)
		if f := ca.Context.AuditFraction(); f < auditLo || f > auditHi {
			t.Errorf("%s audit context fraction = %v, want [%v, %v]", id, f, auditLo, auditHi)
		}
		if f := ca.Context.VendorFraction(); f < vendorLo || f > vendorHi {
			t.Errorf("%s vendor context fraction = %v, want [%v, %v]", id, f, vendorLo, vendorHi)
		}
	}
	// Paper Table 2 (audit / vendor): Research-010 2.50/2.66,
	// Research-020 3.75/3.05, Football-010 64.12/100, Football-030
	// 46.66/100, Russia 4.10/7, USA 6.28/10.73, General-005 4.96/7.36,
	// General-010 6.63/56.65.
	tol("Research-010", 0.01, 0.07, 0.005, 0.05)
	tol("Research-020", 0.02, 0.08, 0.01, 0.06)
	tol("Football-010", 0.50, 0.75, 0.999, 1.0)
	tol("Football-030", 0.35, 0.60, 0.999, 1.0)
	tol("Russia", 0.02, 0.09, 0.03, 0.12)
	tol("USA", 0.03, 0.13, 0.05, 0.16)
	tol("General-005", 0.03, 0.12, 0.04, 0.12)
	tol("General-010", 0.04, 0.13, 0.45, 0.68)

	// The football campaigns' vendor reports claim 100% contextual
	// delivery while the audit sees roughly half — the paper's
	// "non-disclosed criteria" finding.
	f010 := campaignAudit(t, rep, "Football-010")
	if f010.Context.VendorFraction() < 0.999 {
		t.Fatal("Football-010 vendor must claim 100% contextual")
	}
	if f010.Context.AuditFraction() > 0.80 {
		t.Fatal("Football-010 audit fraction should stay well below the vendor claim")
	}
}

func TestFigure2Shapes(t *testing.T) {
	_, rep := paperRun(t)
	top50K := func(id string) (pubs, imps float64) {
		ca := campaignAudit(t, rep, id)
		return ca.Popularity.TopKPublisherFraction(50_000), ca.Popularity.TopKImpressionFraction(50_000)
	}
	// The paper's unexpected finding: the 0.01€ campaign concentrates
	// MORE of its delivery on popular publishers than the 0.30€ one
	// (89% vs 68% of impressions in the Alexa Top 50K).
	ruPubs, ruImps := top50K("Russia")
	f30Pubs, f30Imps := top50K("Football-030")
	if ruImps <= f30Imps+0.10 {
		t.Fatalf("0.01€ campaign top-50K impression share (%v) must clearly exceed 0.30€ (%v)", ruImps, f30Imps)
	}
	if ruPubs <= f30Pubs {
		t.Fatalf("0.01€ campaign top-50K publisher share (%v) must exceed 0.30€ (%v)", ruPubs, f30Pubs)
	}
	if ruImps < 0.65 {
		t.Fatalf("0.01€ campaign top-50K impression share = %v, want ~0.89", ruImps)
	}
	if f30Imps < 0.40 || f30Imps > 0.80 {
		t.Fatalf("0.30€ campaign top-50K impression share = %v, want ~0.68", f30Imps)
	}
}

func TestTable3Shapes(t *testing.T) {
	_, rep := paperRun(t)
	// Paper Table 3 targets, ±6 points.
	want := map[string]float64{
		"Research-010": 0.5618,
		"Research-020": 0.5221,
		"Football-010": 0.7989,
		"Football-030": 0.8280,
		"Russia":       0.6269,
		"USA":          0.7113,
		"General-005":  0.7513,
		"General-010":  0.5503,
	}
	for id, target := range want {
		got := campaignAudit(t, rep, id).Viewability.Fraction()
		if got < target-0.06 || got > target+0.06 {
			t.Errorf("%s viewability = %v, want %v ± 0.06", id, got, target)
		}
	}
	// Football campaigns top the table (the paper's context-modulates-
	// viewability conjecture).
	f30 := campaignAudit(t, rep, "Football-030").Viewability.Fraction()
	for _, ca := range rep.PerCampaign {
		if !strings.HasPrefix(ca.ID, "Football") && ca.Viewability.Fraction() >= f30 {
			t.Errorf("%s viewability (%v) exceeds Football-030 (%v)", ca.ID, ca.Viewability.Fraction(), f30)
		}
	}
}

func TestFigure3Shapes(t *testing.T) {
	_, rep := paperRun(t)
	freq := rep.Frequency
	// Paper: 1720 users above 10 impressions, 176 above 100.
	if freq.UsersOver10 < 1000 || freq.UsersOver10 > 3000 {
		t.Fatalf("users over 10 impressions = %d, want ~1720", freq.UsersOver10)
	}
	if freq.UsersOver100 < 60 || freq.UsersOver100 > 350 {
		t.Fatalf("users over 100 impressions = %d, want ~176", freq.UsersOver100)
	}
	// Heavy users see the same ad with sub-minute median gaps; extremes
	// below 20 s.
	if n := freq.MedianIATBelow(100, time.Minute); n < freq.UsersOver100/2 {
		t.Fatalf("only %d of %d 100+ users have sub-minute gaps", n, freq.UsersOver100)
	}
	if n := freq.MedianIATBelow(100, 20*time.Second); n == 0 {
		t.Fatal("no extreme user with median gap below 20 s")
	}
	// Monotone trend: heavier users have tighter gaps (compare medians
	// of the top and bottom deciles of multi-impression users).
	var heavy, light []time.Duration
	for _, p := range freq.Points {
		switch {
		case p.Impressions > 100:
			heavy = append(heavy, p.MedianInterArrival)
		case p.Impressions >= 2 && p.Impressions <= 3:
			light = append(light, p.MedianInterArrival)
		}
	}
	if len(heavy) == 0 || len(light) == 0 {
		t.Fatal("missing heavy or light users")
	}
	if medianDur(heavy) >= medianDur(light) {
		t.Fatalf("heavy users' median gap (%v) should be far below light users' (%v)",
			medianDur(heavy), medianDur(light))
	}
}

func medianDur(ds []time.Duration) time.Duration {
	cp := append([]time.Duration(nil), ds...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestTable4Shapes(t *testing.T) {
	_, rep := paperRun(t)
	imps := func(id string) float64 {
		return campaignAudit(t, rep, id).Fraud.PctDataCenterImpressions()
	}
	// Paper Table 4 column 2: Football ≈ 8.6-11%, Research ≈ 2.9-4.4%,
	// the rest below 1%.
	for _, id := range []string{"Football-010", "Football-030"} {
		if f := imps(id); f < 0.05 || f > 0.18 {
			t.Errorf("%s DC impression share = %v, want ~0.10", id, f)
		}
	}
	for _, id := range []string{"Research-010", "Research-020"} {
		if f := imps(id); f < 0.01 || f > 0.08 {
			t.Errorf("%s DC impression share = %v, want ~0.03", id, f)
		}
	}
	for _, id := range []string{"Russia", "USA", "General-005", "General-010"} {
		if f := imps(id); f > 0.02 {
			t.Errorf("%s DC impression share = %v, want < 0.01", id, f)
		}
	}
	// Football campaigns expose ~23% of their publishers to DC traffic.
	for _, id := range []string{"Football-010", "Football-030"} {
		if f := campaignAudit(t, rep, id).Fraud.PctPublishersServingDC(); f < 0.10 || f > 0.35 {
			t.Errorf("%s publishers serving DC = %v, want ~0.23", id, f)
		}
	}
	// Ordering: football campaigns are the most exposed.
	if imps("Football-030") <= imps("General-010") || imps("Football-010") <= imps("Russia") {
		t.Error("football campaigns must be the most DC-exposed")
	}
}

func TestReportRendersEveryArtifact(t *testing.T) {
	run, rep := paperRun(t)
	var buf bytes.Buffer
	if err := run.WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Table 2", "Figure 2", "Table 3", "Figure 3", "Table 4",
		"Research-010", "Football-030", "Anon", "ALL CAMPAIGNS",
	} {
		if !strings.Contains(out, want) && !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWorkspaceDeterminism(t *testing.T) {
	ws1, err := NewWorkspace(Options{Seed: 7, NumPublishers: 5000})
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := NewWorkspace(Options{Seed: 7, NumPublishers: 5000})
	if err != nil {
		t.Fatal(err)
	}
	cs := adnet.PaperCampaigns()[:1]
	r1, err := ws1.Run(cs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ws2.Run(cs)
	if err != nil {
		t.Fatal(err)
	}
	if ws1.Store.Len() != ws2.Store.Len() {
		t.Fatalf("store sizes differ: %d vs %d", ws1.Store.Len(), ws2.Store.Len())
	}
	if r1.Outcome.TotalLogged() != r2.Outcome.TotalLogged() {
		t.Fatal("logged counts differ across identical seeds")
	}
	for id := int64(1); id <= int64(ws1.Store.Len()); id += 97 {
		a, _ := ws1.Store.Get(id)
		b, _ := ws2.Store.Get(id)
		if a.Publisher != b.Publisher || a.UserKey != b.UserKey || !a.Timestamp.Equal(b.Timestamp) {
			t.Fatalf("record %d differs across identical seeds", id)
		}
	}
}

func TestWorkspaceCustomPolicyAblation(t *testing.T) {
	// With a frequency cap of 10, the Figure 3 tail disappears.
	pol := adnet.DefaultPolicy()
	pol.FrequencyCap = 10
	ws, err := NewWorkspace(Options{Seed: 3, NumPublishers: 5000, Policy: &pol})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ws.Run(adnet.PaperCampaigns()[:2])
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frequency.UsersOver10 != 0 {
		t.Fatalf("frequency cap 10 left %d users above 10 impressions", rep.Frequency.UsersOver10)
	}
}
