GO ?= go

.PHONY: build test check bench bench-compare chaos sim fuzz-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: build + vet + tests + race detector over the
# concurrency-sensitive packages. See scripts/check.sh.
check:
	sh scripts/check.sh

# bench runs the telemetry-overhead comparison (instrumented vs
# uninstrumented ingest) on top of the full check.
bench:
	sh scripts/check.sh -bench

# bench-compare runs the audit-engine performance gate: serial vs
# parallel FullAudit plus the Table 2 context benchmark, summarised
# into BENCH_audit.json, failing on a >10% allocs/op regression in
# BenchmarkTable2Context. See scripts/bench_compare.sh.
bench-compare:
	sh scripts/bench_compare.sh

# chaos runs the fault-injection suite under the race detector: the
# faultnet layer's own tests plus the end-to-end chaos campaign
# (proxy-injected kills/resets, beacon reconnects, WAL crash recovery).
chaos:
	sh scripts/check.sh -chaos

# sim runs the deterministic simulation sweep: 25 seeded schedules
# through the full beacon -> collector -> store -> audit pipeline under
# -race with the invariant oracle watching, plus the trace-digest
# determinism gate. Reproduce a failing seed with:
#   go test ./internal/simtest -run TestSim -seed=<n> [-only=<sessions>]
sim:
	sh scripts/check.sh -sim

# fuzz-smoke runs every native fuzz target for 30 s from the committed
# seed corpora (testdata/fuzz/): wsproto frame parsing, beacon payload
# codec, store WAL replay and snapshot reader, collector query API.
fuzz-smoke:
	sh scripts/check.sh -fuzz-smoke

clean:
	$(GO) clean ./...
