GO ?= go

.PHONY: build test check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: build + vet + tests + race detector over the
# concurrency-sensitive packages. See scripts/check.sh.
check:
	sh scripts/check.sh

# bench runs the telemetry-overhead comparison (instrumented vs
# uninstrumented ingest) on top of the full check.
bench:
	sh scripts/check.sh -bench

clean:
	$(GO) clean ./...
